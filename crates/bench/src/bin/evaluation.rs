//! Regenerates the paper's Section IV evaluation: Figs. 10–16, Tables
//! II–IV, plus the action-space ablation from DESIGN.md.
//!
//! ```text
//! cargo run --release -p fairmove-bench --bin evaluation [-- <exp…> --scale <s>]
//!     exp ∈ {summary, fig10, fig11, fig12, fig13, fig14, fig15, fig16,
//!            table2, table3, table4, ablation-k, ablation-state};
//!            default: all but the ablations
//!     s   ∈ {test, small, default, full};         default small
//! ```
//!
//! All methods are trained (where applicable), frozen, and evaluated on the
//! identical demand realization; every number is relative to the GT run.

use fairmove_bench::parse_scale;
use fairmove_bench::report::{pct, Table};
use fairmove_core::experiments::{alpha_sweep, ComparisonConfig, ComparisonResults};
use fairmove_core::method::MethodKind;
use fairmove_metrics::{comparison, findings};
use fairmove_sim::FleetLedger;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = parse_scale(&args);
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| {
            a.starts_with("fig")
                || a.starts_with("table")
                || a.starts_with("ablation")
                || *a == "summary"
        })
        .map(String::as_str)
        .collect();
    let want = |name: &str| wanted.is_empty() || wanted.contains(&name);

    println!("== FairMove evaluation (scale: {}) ==\n", scale.name());

    // The ablation sweeps train extra FairMove instances; run them only
    // when explicitly requested.
    if wanted.contains(&"ablation-k") {
        ablation_k(scale);
        if wanted == ["ablation-k"] {
            return;
        }
    }
    if wanted.contains(&"ablation-state") {
        ablation_state(scale);
        if wanted == ["ablation-state"] {
            return;
        }
    }

    if want("table4") {
        table4(scale);
        if wanted == ["table4"] {
            return;
        }
    }

    let main_experiments = [
        "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "table2", "table3",
        "summary",
    ];
    if !main_experiments.iter().any(|e| want(e)) {
        return;
    }

    println!(
        "training + evaluating all methods ({} episodes each) …\n",
        scale.train_episodes()
    );
    let config = ComparisonConfig {
        sim: scale.sim(),
        train_episodes: scale.train_episodes(),
        alpha: 0.6,
        methods: MethodKind::baselines_and_fairmove().to_vec(),
        eval_seeds: scale.eval_seeds(),
    };
    let results = ComparisonResults::run(&config);
    export_run_reports(&results, scale.name());

    if want("summary") {
        summary(&results);
    }
    if want("fig10") {
        fig10(&results);
    }
    if want("fig11") {
        fig11(&results);
    }
    if want("fig12") {
        fig12(&results);
    }
    if want("fig13") {
        fig13(&results);
    }
    if want("fig14") {
        fig14(&results);
    }
    if want("fig15") {
        fig15(&results);
    }
    if want("fig16") {
        fig16(&results);
    }
    if want("table2") {
        table2(&results);
    }
    if want("table3") {
        table3(&results);
    }
}

/// Writes one JSONL run report per method (GT first) next to the text
/// output: slot-latency histograms, training curves, and headline metrics,
/// ready for cross-commit diffing.
fn export_run_reports(results: &ComparisonResults, scale: &str) {
    let path = format!("run_reports_eval_{scale}.jsonl");
    let result = std::fs::File::create(&path).and_then(|mut f| {
        fairmove_telemetry::RunReport::write_jsonl(results.run_reports(), &mut f)
    });
    match result {
        Ok(()) => println!("run reports (JSONL): {path}\n"),
        Err(e) => eprintln!("failed to write {path}: {e}\n"),
    }
}

/// Diagnostic: raw per-method fleet statistics (not a paper artifact, but
/// what every paper number is built from).
fn summary(results: &ComparisonResults) {
    println!("--- Run summary (diagnostics) ---");
    let mut t = Table::new(&[
        "method", "trips", "charges", "expired", "revenue", "cost", "mean PE", "PF",
    ]);
    for (name, ledger) in ledgers(results) {
        let (rev, cost) = ledger.totals();
        let pes = ledger.profit_efficiencies();
        let mean_pe = pes.iter().sum::<f64>() / pes.len().max(1) as f64;
        t.row(&[
            name.into(),
            ledger.trips().len().to_string(),
            ledger.charges().len().to_string(),
            ledger.expired_requests.to_string(),
            format!("{rev:.0}"),
            format!("{cost:.0}"),
            format!("{mean_pe:.1}"),
            format!("{:.1}", fairmove_metrics::profit_fairness(&pes)),
        ]);
    }
    t.print();
    println!();
}

fn ledgers(results: &ComparisonResults) -> Vec<(&'static str, &FleetLedger)> {
    let mut out = vec![("GT", results.gt_ledger())];
    for m in &results.methods {
        out.push((m.kind.name(), &m.outcome.ledger));
    }
    out
}

/// Fig. 10: per-trip cruise-time distribution per method.
/// Paper: GT median 6.5 min → FairMove 5.4 min, variance shrinks.
fn fig10(results: &ComparisonResults) {
    println!("--- Fig. 10: per-trip cruise time (min) ---");
    let mut t = Table::new(&["method", "P25", "median", "P75", "mean"]);
    for (name, ledger) in ledgers(results) {
        let cdf = findings::cruise_time_distribution(ledger);
        t.row(&[
            name.into(),
            format!("{:.1}", cdf.quantile(0.25)),
            format!("{:.1}", cdf.median()),
            format!("{:.1}", cdf.quantile(0.75)),
            format!("{:.1}", cdf.mean()),
        ]);
    }
    t.print();
    println!("paper: GT median 6.5 → FairMove 5.4, with smaller variance\n");
}

/// Fig. 11: average PRCT per hour of day, per method.
fn fig11(results: &ComparisonResults) {
    println!("--- Fig. 11: hourly PRCT (cruise-time reduction vs GT) ---");
    hourly_table(results, comparison::hourly_prct);
    println!("paper: FairMove >40% at 05:00–07:00 (thin-demand hours)\n");
}

/// Fig. 12: per-charge idle-time distribution per method.
/// Paper: FairMove P75 < 22 min; SD2 prolongs idle time.
fn fig12(results: &ComparisonResults) {
    println!("--- Fig. 12: per-charge idle time (min) ---");
    let mut t = Table::new(&["method", "P25", "median", "P75", "mean"]);
    for (name, ledger) in ledgers(results) {
        let cdf = findings::idle_time_distribution(ledger);
        t.row(&[
            name.into(),
            format!("{:.1}", cdf.quantile(0.25)),
            format!("{:.1}", cdf.median()),
            format!("{:.1}", cdf.quantile(0.75)),
            format!("{:.1}", cdf.mean()),
        ]);
    }
    t.print();
    println!("paper: FairMove 75% of idle < 22 min; SD2 worst (herding)\n");
}

/// Fig. 13: average PRIT per hour of day, per method.
fn fig13(results: &ComparisonResults) {
    println!("--- Fig. 13: hourly PRIT (idle-time reduction vs GT) ---");
    hourly_table(results, comparison::hourly_prit);
    println!("paper: FairMove best in charging-peak hours (04–05, 17–18)\n");
}

fn hourly_table(
    results: &ComparisonResults,
    f: impl Fn(&FleetLedger, &FleetLedger) -> [Option<f64>; 24],
) {
    let gt = results.gt_ledger();
    let mut header = vec!["hour".to_string()];
    header.extend(results.methods.iter().map(|m| m.kind.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);
    let series: Vec<[Option<f64>; 24]> = results
        .methods
        .iter()
        .map(|m| f(gt, &m.outcome.ledger))
        .collect();
    for h in 0..24 {
        let mut row = vec![format!("{h:02}:00")];
        for s in &series {
            row.push(s[h].map(pct).unwrap_or_else(|| "-".into()));
        }
        t.row(&row);
    }
    t.print();
}

/// Fig. 14: hourly profit-efficiency distribution per method.
/// Paper: GT median 45.2 → FairMove 53.1, variance shrinks.
fn fig14(results: &ComparisonResults) {
    println!("--- Fig. 14: per-taxi profit efficiency (CNY/h) ---");
    let mut t = Table::new(&["method", "P25", "median", "P75", "variance"]);
    for (name, ledger) in ledgers(results) {
        let pes = ledger.profit_efficiencies();
        let cdf = fairmove_metrics::Cdf::new(pes.iter().copied());
        t.row(&[
            name.into(),
            format!("{:.1}", cdf.quantile(0.25)),
            format!("{:.1}", cdf.median()),
            format!("{:.1}", cdf.quantile(0.75)),
            format!("{:.1}", fairmove_metrics::profit_fairness(&pes)),
        ]);
    }
    t.print();
    println!("paper: GT median 45.2 → FairMove 53.1, smaller variance\n");
}

/// Fig. 15: overall PIPE per method.
/// Paper: FairMove +25.2%, DQN +7.5%, SD2 −5%.
fn fig15(results: &ComparisonResults) {
    println!("--- Fig. 15: PIPE (profit-efficiency increase vs GT) ---");
    let mut t = Table::new(&["method", "PIPE"]);
    for m in &results.methods {
        t.row(&[m.kind.name().into(), pct(m.report.pipe)]);
    }
    t.print();
    println!("paper: FairMove +25.2%, DQN +7.5%, SD2 −5%\n");
}

/// Fig. 16: PIPF per method.
/// Paper: FairMove 54.7%, TQL 28.7%, DQN 17.9%, SD2/TBA ≈13%.
fn fig16(results: &ComparisonResults) {
    println!("--- Fig. 16: PIPF (profit-fairness increase vs GT) ---");
    let mut t = Table::new(&["method", "PIPF"]);
    for m in &results.methods {
        t.row(&[m.kind.name().into(), pct(m.report.pipf)]);
    }
    t.print();
    println!("paper: FairMove +54.7%, TQL +28.7%, DQN +17.9%, SD2/TBA ≈ +13%\n");
}

/// Table II: PRCT per method.
/// Paper: SD2 19.4, TQL 13.7, DQN 23.6, TBA 21.3, FairMove 32.1 (%).
fn table2(results: &ComparisonResults) {
    println!("--- Table II: PRCT per method ---");
    let mut t = Table::new(&["method", "PRCT", "paper"]);
    let paper = [
        ("SD2", 19.4),
        ("TQL", 13.7),
        ("DQN", 23.6),
        ("TBA", 21.3),
        ("FairMove", 32.1),
    ];
    for m in &results.methods {
        let reference = paper
            .iter()
            .find(|(n, _)| *n == m.kind.name())
            .map(|(_, v)| format!("+{v:.1}%"))
            .unwrap_or_else(|| "-".into());
        t.row(&[m.kind.name().into(), pct(m.report.prct), reference]);
    }
    t.print();
    println!();
}

/// Table III: PRIT per method.
/// Paper: SD2 −23.1, TQL 8.4, DQN 21, TBA 3.1, FairMove 43.3 (%).
fn table3(results: &ComparisonResults) {
    println!("--- Table III: PRIT per method ---");
    let mut t = Table::new(&["method", "PRIT", "paper"]);
    let paper = [
        ("SD2", -23.1),
        ("TQL", 8.4),
        ("DQN", 21.0),
        ("TBA", 3.1),
        ("FairMove", 43.3),
    ];
    for m in &results.methods {
        let reference = paper
            .iter()
            .find(|(n, _)| *n == m.kind.name())
            .map(|(_, v)| format!("{v:+.1}%"))
            .unwrap_or_else(|| "-".into());
        t.row(&[m.kind.name().into(), pct(m.report.prit), reference]);
    }
    t.print();
    println!();
}

/// Table IV: average CMA2C reward vs the weight α.
/// Paper: 6.95, 7.05, 7.16, 7.44, 7.39, 7.15 for α = 0 … 1 — peak at 0.6–0.8.
fn table4(scale: fairmove_bench::Scale) {
    println!("--- Table IV: average reward vs α ---");
    let alphas = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let sweep = alpha_sweep(&scale.sim(), scale.train_episodes(), &alphas);
    let mut t = Table::new(&["alpha", "avg reward"]);
    for (alpha, reward) in &sweep {
        t.row(&[format!("{alpha:.1}"), format!("{reward:.3}")]);
    }
    t.print();
    let best = sweep
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(a, _)| *a)
        .unwrap_or(f64::NAN);
    println!("best α: {best:.1} (paper: 0.6–0.8)\n");
}

/// DESIGN.md ablation: what do the global-view and fairness state features
/// buy? Trains CMA2C with feature groups zeroed out.
fn ablation_state(scale: fairmove_bench::Scale) {
    use fairmove_agents::Cma2cConfig;
    use fairmove_city::City;
    use fairmove_core::method::Method;
    use fairmove_core::runner::Runner;

    println!("--- Ablation: state feature groups ---");
    let sim = scale.sim();
    let city = City::generate(sim.city.clone());
    let variants: [(&str, bool, bool); 3] = [
        ("full state", false, false),
        ("no global view", true, false),
        ("no fairness features", false, true),
    ];
    let mut t = Table::new(&["variant", "PIPE", "PIPF", "PRCT"]);
    // One GT reference for all variants.
    let runner = Runner::new(sim.clone(), scale.train_episodes(), 0.6);
    let mut gt = Method::build(MethodKind::Gt, &city, &sim, 0.6);
    let (_, gt_out) = runner.train_and_evaluate(&mut gt);
    // The three variants are independent training runs against the shared
    // GT reference; fan them out, keeping table rows in variant order.
    let rows = fairmove_parallel::ordered_map(variants.to_vec(), |(label, no_global, no_fair)| {
        let mut method = Method::fairmove_with(
            &city,
            Cma2cConfig {
                seed: sim.seed,
                ablate_global_view: no_global,
                ablate_fairness_features: no_fair,
                ..Cma2cConfig::default()
            },
        );
        let (_, out) = runner.train_and_evaluate(&mut method);
        let report = fairmove_metrics::MethodReport::compute(label, &gt_out.ledger, &out.ledger);
        [
            label.to_string(),
            pct(report.pipe),
            pct(report.pipf),
            pct(report.prct),
        ]
    });
    for row in &rows {
        t.row(row);
    }
    t.print();
    println!(
        "note: with short training budgets the fairness-feature effect is below\n\
sampling noise (the feature weights start random and small); run at\n\
--scale small or larger for a powered comparison.\n"
    );
}

/// DESIGN.md ablation: how many nearest stations should the charge action
/// expose? The paper fixes k = 5; this sweep shows the tradeoff.
fn ablation_k(scale: fairmove_bench::Scale) {
    println!("--- Ablation: nearest-station action count k ---");
    let mut t = Table::new(&["k", "PIPE", "PIPF", "PRIT"]);
    // Fan over the k sweep; each comparison runs its own GT + FairMove pair
    // with inner threads pinned to 1 so the sweep is the only fan-out level.
    let rows = fairmove_parallel::ordered_map(vec![1usize, 3, 5, 8], |k| {
        let mut sim = scale.sim();
        sim.city.nearest_stations_k = k;
        let config = ComparisonConfig {
            sim,
            train_episodes: scale.train_episodes(),
            alpha: 0.6,
            methods: vec![MethodKind::FairMove],
            eval_seeds: scale.eval_seeds(),
        };
        let results = ComparisonResults::run_with_threads(&config, 1);
        let m = &results.methods[0];
        [
            k.to_string(),
            pct(m.report.pipe),
            pct(m.report.pipf),
            pct(m.report.prit),
        ]
    });
    for row in &rows {
        t.row(row);
    }
    t.print();
    println!("k = 1 collapses to nearest-station (SD2-style herding); larger k\nwidens choice at the cost of action-space size. Paper uses k = 5.\n");
}
