//! Dispatch-server bench: concurrent deadline-carrying load against a live
//! [`fairmove_serve::DispatchServer`], then a forced kill and a timed warm
//! restart. Written to `BENCH_serve.json`.
//!
//! The load phase runs `--clients` threads, each issuing `DECIDE <budget>`
//! requests (advisory displacement decisions — they journal and mutate the
//! policy RNG like production traffic, but don't burn the 1-day horizon the
//! way `STEP` would, so any request count is valid). Per-request wall time
//! feeds p50/p99; `ERR 429`/`ERR 503` responses count as shed.
//!
//! The recovery phase snapshots the state digest, crashes the worker with
//! `KILL` (no final checkpoint, no queue drain), restarts on the same data
//! directory, and times checkpoint-restore + journal-replay + bind until the
//! first `OK digest` answer. The bench exits nonzero if the revived digest
//! differs from the pre-kill digest — CI runs `--smoke` on every push, so
//! warm-restart bit-fidelity is gated, not just reported.
//!
//! Flags:
//! - `--smoke`: 2 clients x 40 requests (CI-sized).
//! - `--clients <n>` / `--requests <n>`: load shape (default 4 x 200).
//! - `--deadline-ms <n>`: per-request budget (default 1000).
//! - `--out <path>`: report path (default `BENCH_serve.json`).

use fairmove_bench::ServeReport;
use fairmove_serve::{Client, DispatchServer, ServeConfig};
use std::time::{Duration, Instant};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

struct ClientTally {
    ok: u64,
    shed: u64,
    decisions: u64,
    latencies_us: Vec<u64>,
}

fn percentile_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)] as f64 / 1000.0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let (default_clients, default_requests) = if smoke { (2, 40) } else { (4, 200) };
    let clients: usize = arg_value(&args, "--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_clients)
        .max(1);
    let requests: usize = arg_value(&args, "--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_requests)
        .max(1);
    let deadline_ms: u64 = arg_value(&args, "--deadline-ms")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let out_path = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".into());

    let data_dir =
        std::env::temp_dir().join(format!("fairmove-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let mut config = ServeConfig::test_scale(data_dir.clone());
    config.queue_depth = (clients * 2).max(8);
    let sim = config.sim.clone();
    let server = DispatchServer::start(config).expect("start dispatch server");
    let addr = server.addr();
    eprintln!(
        "serving on {addr}; {clients} clients x {requests} requests, {deadline_ms}ms budgets"
    );

    // -- load phase ------------------------------------------------------
    let started = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut client = Client::connect(addr).expect("connect load client");
                    let mut tally = ClientTally {
                        ok: 0,
                        shed: 0,
                        decisions: 0,
                        latencies_us: Vec::with_capacity(requests),
                    };
                    let line = format!("DECIDE {deadline_ms}");
                    for _ in 0..requests {
                        let t0 = Instant::now();
                        let response = client.request(&line).expect("request");
                        tally
                            .latencies_us
                            .push(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
                        if let Some(rest) = response.strip_prefix("OK decide ") {
                            tally.ok += 1;
                            if let Some(n) = rest.split_whitespace().next() {
                                tally.decisions += n.parse::<u64>().unwrap_or(0);
                            }
                        } else if response.starts_with("ERR 429") || response.starts_with("ERR 503")
                        {
                            tally.shed += 1;
                        } else {
                            panic!("unexpected response {response:?}");
                        }
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let load_secs = started.elapsed().as_secs_f64().max(1e-9);

    let ok: u64 = tallies.iter().map(|t| t.ok).sum();
    let shed: u64 = tallies.iter().map(|t| t.shed).sum();
    let decisions: u64 = tallies.iter().map(|t| t.decisions).sum();
    let mut latencies: Vec<u64> = tallies
        .iter()
        .flat_map(|t| t.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();

    // -- forced kill + timed warm restart --------------------------------
    let mut probe = Client::connect(addr).expect("connect digest probe");
    let digest_before = probe.request("DIGEST").expect("pre-kill digest");
    probe.fire_and_forget("KILL").expect("send KILL");
    let mut server = server;
    assert!(
        server.wait_worker_exit(Duration::from_secs(30)),
        "worker must die on KILL"
    );
    drop(server);

    let t0 = Instant::now();
    let mut config = ServeConfig::test_scale(data_dir.clone());
    config.sim = sim;
    config.queue_depth = (clients * 2).max(8);
    let revived = DispatchServer::start(config).expect("warm restart");
    let mut probe = Client::connect(revived.addr()).expect("connect revived probe");
    let digest_after = probe.request("DIGEST").expect("post-restart digest");
    let recovery_ms = t0.elapsed().as_secs_f64() * 1000.0;
    let recovery = revived.recovery();
    let digest_match = digest_before == digest_after;
    revived.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);

    let attempted = (clients * requests) as u64;
    let report = ServeReport {
        clients,
        requests_per_client: requests,
        ok,
        shed,
        decisions,
        decisions_per_sec: decisions as f64 / load_secs,
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
        shed_rate: shed as f64 / attempted as f64,
        recovery_ms,
        replayed: recovery.replayed,
        digest_match,
    };

    println!(
        "{} ok / {} shed of {} requests ({:.1}% shed)",
        report.ok,
        report.shed,
        attempted,
        report.shed_rate * 100.0
    );
    println!(
        "{:.0} decisions/s, p50 {:.2} ms, p99 {:.2} ms",
        report.decisions_per_sec, report.p50_ms, report.p99_ms
    );
    println!(
        "recovery after kill: {:.1} ms (warm start {:?}, {} records replayed), digest match: {}",
        report.recovery_ms, recovery.warm_start_seq, report.replayed, report.digest_match
    );

    let json = report.to_json();
    assert!(
        ServeReport::from_json(&json).as_ref() == Some(&report),
        "report must round-trip through its own parser"
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if !digest_match {
        eprintln!("FATAL: warm restart diverged: {digest_before} != {digest_after}");
        std::process::exit(1);
    }
}
