//! Paper-scale throughput bench: steady-state stepping at each scale preset,
//! written to `BENCH_scale.json`.
//!
//! For every (scale, policy) pair this measures median-of-rounds slots/s and
//! decisions/s over a contiguous steady-state window (warmup first, so
//! pooled buffers reach their high-water sizes), plus heap allocations per
//! measured slot — this binary installs the testkit's counting allocator,
//! so a non-zero `allocs_per_slot` on the hot path is visible right in the
//! report — and the process peak RSS.
//!
//! Flags:
//! - `--smoke`: Test scale only, one measured round. The CI bench-smoke job
//!   runs this to keep the report schema and the zero-alloc steady state
//!   exercised on every push.
//! - `--full`: additionally run the paper-scale preset (20,130 taxis, 491
//!   regions — minutes per round). Off by default.
//! - `--out <path>`: where to write the report (default `BENCH_scale.json`).
//!
//! Policies: `stay` (environment-dominated floor) and `cma2c-frozen` (the
//! deployed inference path: wave-batched actor forward passes, no learning).
//! The throughput-regression test in `crates/bench/tests/` compares the
//! default-scale `cma2c-frozen` row against the checked-in baseline.

use fairmove_agents::{Cma2cConfig, Cma2cPolicy};
use fairmove_bench::{measure, Scale, ScaleReport, ScaleResult};
use fairmove_city::City;
use fairmove_sim::StayPolicy;
use fairmove_testkit::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Measured rounds per (scale, policy) pair; the report keeps the median.
const ROUNDS: usize = 3;
/// Unmeasured slots stepped first so pooled buffers reach steady state.
const WARMUP: usize = 12;

fn run_scale(scale: Scale, rounds: usize, warmup: usize) -> Vec<ScaleResult> {
    // Test's 1-day horizon only fits 3 rounds at 36 slots; the longer
    // horizons take 48-slot rounds for a steadier median.
    let slots_per_round = match scale {
        Scale::Test => 36,
        _ => 48,
    };
    let mut results = Vec::new();

    let mut stay = StayPolicy;
    eprintln!("measuring {}/stay ...", scale.name());
    results.push(measure(
        scale,
        &mut stay,
        "stay",
        warmup,
        rounds,
        slots_per_round,
    ));

    let city = City::generate(scale.sim().city.clone());
    let mut cma2c = Cma2cPolicy::new(&city, Cma2cConfig::default());
    cma2c.freeze();
    eprintln!("measuring {}/cma2c-frozen ...", scale.name());
    results.push(measure(
        scale,
        &mut cma2c,
        "cma2c-frozen",
        warmup,
        rounds,
        slots_per_round,
    ));

    results
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let full = args.iter().any(|a| a == "--full");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_scale.json");

    let (scales, rounds, warmup): (&[Scale], usize, usize) = if smoke {
        (&[Scale::Test], 1, 6)
    } else if full {
        (
            &[Scale::Test, Scale::Small, Scale::Default, Scale::Full],
            ROUNDS,
            WARMUP,
        )
    } else {
        (&[Scale::Test, Scale::Small, Scale::Default], ROUNDS, WARMUP)
    };

    let mut report = ScaleReport {
        threads: fairmove_parallel::thread_count(),
        rounds,
        results: Vec::new(),
    };
    for &scale in scales {
        // The paper-scale preset gets one round: a single round is already
        // minutes of wall clock, and the medians at smaller scales cover
        // run-to-run noise.
        let scale_rounds = if scale == Scale::Full { 1 } else { rounds };
        report
            .results
            .extend(run_scale(scale, scale_rounds, warmup));
    }

    for r in &report.results {
        println!(
            "{}/{}: {:.2} slots/s, {:.0} decisions/s, {:.3} allocs/slot, peak RSS {:.1} MiB",
            r.scale,
            r.policy,
            r.slots_per_sec,
            r.decisions_per_sec,
            r.allocs_per_slot,
            r.peak_rss_bytes as f64 / (1024.0 * 1024.0),
        );
        println!(
            "  phases: observe {:.1} µs/slot, decide {:.1} µs/slot, commit {:.1} µs/slot",
            r.observe_ns_per_slot / 1000.0,
            r.decide_ns_per_slot / 1000.0,
            r.commit_ns_per_slot / 1000.0,
        );
    }

    let json = report.to_json();
    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
