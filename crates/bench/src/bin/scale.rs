//! Paper-scale throughput bench: steady-state stepping at each scale preset,
//! written to `BENCH_scale.json`.
//!
//! For every (scale, policy) pair this measures median-of-rounds slots/s and
//! decisions/s over a contiguous steady-state window (warmup first, so
//! pooled buffers reach their high-water sizes), plus heap allocations per
//! measured slot — this binary installs the testkit's counting allocator,
//! so a non-zero `allocs_per_slot` on the hot path is visible right in the
//! report — and the process peak RSS.
//!
//! Flags:
//! - `--smoke`: Test scale only, one measured round. The CI bench-smoke job
//!   runs this to keep the report schema and the zero-alloc steady state
//!   exercised on every push.
//! - `--full`: additionally run the paper-scale preset (20,130 taxis, 491
//!   regions — minutes per round). Off by default.
//! - `--paper`: run the paper preset on the region-sharded engine (the full
//!   20,130-taxi deployment over one day; `--smoke` shrinks the window).
//! - `--policy greedy|cma2c`: which slot-granularity policy drives the
//!   `--paper` run (default `greedy`; `cma2c` is the frozen wave-batched
//!   actor on the sharded engine).
//! - `--backend scalar|vectorized|quantized`: numeric serving backend.
//!   `scalar`/`vectorized` select the matrix-kernel backend process-wide
//!   (bitwise-equal by contract — decision counts must not move, only
//!   throughput). `quantized` serves the `--paper` run through the int8
//!   actor (`sharded-cma2c-quant` row, implies `--policy cma2c`).
//! - `--check-baseline [path]`: after writing the report, compare it against
//!   the checked-in baseline (default
//!   `crates/bench/baselines/BENCH_scale_baseline.json`): every report row
//!   with a baseline row at the same `(scale, policy, slots)` must have an
//!   *exactly equal* decision count — a cross-machine determinism gate.
//!   Exits non-zero on mismatch or when a `--paper` row has no baseline.
//! - `--out <path>`: where to write the report (default `BENCH_scale.json`).
//!
//! Policies: `stay` (environment-dominated floor) and `cma2c-frozen` (the
//! deployed inference path: wave-batched actor forward passes, no learning).
//! The throughput-regression test in `crates/bench/tests/` compares the
//! default-scale `cma2c-frozen` row against the checked-in baseline.

use fairmove_agents::{Cma2cConfig, Cma2cPolicy};
use fairmove_bench::scale_bench::{
    ShardBenchPolicy, PAPER_FULL_WINDOW, PAPER_SHARDS, PAPER_SMOKE_WINDOW,
};
use fairmove_bench::{measure, measure_sharded, Scale, ScaleReport, ScaleResult};
use fairmove_city::City;
use fairmove_sim::StayPolicy;
use fairmove_testkit::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Measured rounds per (scale, policy) pair; the report keeps the median.
const ROUNDS: usize = 3;
/// Unmeasured slots stepped first so pooled buffers reach steady state.
const WARMUP: usize = 12;

fn run_scale(scale: Scale, rounds: usize, warmup: usize) -> Vec<ScaleResult> {
    // Test's 1-day horizon only fits 3 rounds at 36 slots; the longer
    // horizons take 48-slot rounds for a steadier median.
    let slots_per_round = match scale {
        Scale::Test => 36,
        _ => 48,
    };
    let mut results = Vec::new();

    let mut stay = StayPolicy;
    eprintln!("measuring {}/stay ...", scale.name());
    results.push(measure(
        scale,
        &mut stay,
        "stay",
        warmup,
        rounds,
        slots_per_round,
    ));

    let city = City::generate(scale.sim().city.clone());
    let mut cma2c = Cma2cPolicy::new(&city, Cma2cConfig::default());
    cma2c.freeze();
    eprintln!("measuring {}/cma2c-frozen ...", scale.name());
    results.push(measure(
        scale,
        &mut cma2c,
        "cma2c-frozen",
        warmup,
        rounds,
        slots_per_round,
    ));

    results
}

/// Compares `report` to the checked-in baseline: rows matching on
/// `(scale, policy, slots)` must agree exactly on `decisions` (the engines
/// are deterministic, so any drift is a real behaviour change, not noise).
/// Returns the number of mismatches; `require_paper` additionally demands
/// that the report's paper rows all found a baseline row.
fn check_baseline(report: &ScaleReport, baseline: &ScaleReport, require_paper: bool) -> usize {
    let mut failures = 0;
    for row in &report.results {
        let matched = baseline
            .results
            .iter()
            .find(|b| b.scale == row.scale && b.policy == row.policy && b.slots == row.slots);
        match matched {
            Some(b) if b.decisions != row.decisions => {
                eprintln!(
                    "BASELINE MISMATCH {}/{} ({} slots): {} decisions, baseline {}",
                    row.scale, row.policy, row.slots, row.decisions, b.decisions
                );
                failures += 1;
            }
            Some(b) => {
                println!(
                    "baseline ok {}/{} ({} slots): {} decisions, {:.2}x baseline throughput",
                    row.scale,
                    row.policy,
                    row.slots,
                    row.decisions,
                    row.slots_per_sec / b.slots_per_sec,
                );
            }
            None if require_paper && row.scale == "paper" => {
                eprintln!(
                    "BASELINE MISSING {}/{} ({} slots): no baseline row at this window",
                    row.scale, row.policy, row.slots
                );
                failures += 1;
            }
            None => {
                println!(
                    "baseline skip {}/{} ({} slots): no row at this window",
                    row.scale, row.policy, row.slots
                );
            }
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let full = args.iter().any(|a| a == "--full");
    let paper = args.iter().any(|a| a == "--paper");
    let baseline_check = args.iter().position(|a| a == "--check-baseline").map(|i| {
        args.get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .map(String::as_str)
            .unwrap_or("crates/bench/baselines/BENCH_scale_baseline.json")
            .to_string()
    });
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_scale.json");
    let mut shard_policy = match args
        .iter()
        .position(|a| a == "--policy")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        None | Some("greedy") => ShardBenchPolicy::Greedy,
        Some("cma2c") => ShardBenchPolicy::Cma2c,
        Some(other) => {
            eprintln!("unknown --policy {other} (expected greedy|cma2c)");
            std::process::exit(2);
        }
    };
    match args
        .iter()
        .position(|a| a == "--backend")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        None => {}
        Some("scalar") => fairmove_rl::set_kernel_backend(fairmove_rl::KernelBackend::Scalar),
        Some("vectorized") => {
            fairmove_rl::set_kernel_backend(fairmove_rl::KernelBackend::Vectorized)
        }
        Some("quantized") => shard_policy = ShardBenchPolicy::Cma2cQuantized,
        Some(other) => {
            eprintln!("unknown --backend {other} (expected scalar|vectorized|quantized)");
            std::process::exit(2);
        }
    }

    let (scales, rounds, warmup): (&[Scale], usize, usize) = if paper {
        (&[], 1, 0) // paper runs through the sharded path below
    } else if smoke {
        (&[Scale::Test], 1, 6)
    } else if full {
        (
            &[Scale::Test, Scale::Small, Scale::Default, Scale::Full],
            ROUNDS,
            WARMUP,
        )
    } else {
        (&[Scale::Test, Scale::Small, Scale::Default], ROUNDS, WARMUP)
    };

    let mut report = ScaleReport {
        threads: fairmove_parallel::thread_count(),
        rounds,
        results: Vec::new(),
    };
    for &scale in scales {
        // The paper-scale preset gets one round: a single round is already
        // minutes of wall clock, and the medians at smaller scales cover
        // run-to-run noise.
        let scale_rounds = if scale == Scale::Full { 1 } else { rounds };
        report
            .results
            .extend(run_scale(scale, scale_rounds, warmup));
    }
    if paper {
        let (warmup, rounds, slots) = if smoke {
            PAPER_SMOKE_WINDOW
        } else {
            PAPER_FULL_WINDOW
        };
        eprintln!(
            "measuring paper/{} ({PAPER_SHARDS} shards, {} threads, {rounds}x{slots} slots) ...",
            shard_policy.name(),
            report.threads
        );
        report.results.push(measure_sharded(
            Scale::Paper,
            shard_policy,
            PAPER_SHARDS,
            report.threads,
            warmup,
            rounds,
            slots,
        ));
    }

    for r in &report.results {
        println!(
            "{}/{}: {:.2} slots/s, {:.0} decisions/s, {:.3} allocs/slot, peak RSS {:.1} MiB",
            r.scale,
            r.policy,
            r.slots_per_sec,
            r.decisions_per_sec,
            r.allocs_per_slot,
            r.peak_rss_bytes as f64 / (1024.0 * 1024.0),
        );
        println!(
            "  phases: observe {:.1} µs/slot, decide {:.1} µs/slot, commit {:.1} µs/slot",
            r.observe_ns_per_slot / 1000.0,
            r.decide_ns_per_slot / 1000.0,
            r.commit_ns_per_slot / 1000.0,
        );
    }

    let json = report.to_json();
    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    if let Some(baseline_path) = baseline_check {
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("failed to read baseline {baseline_path}: {e}");
                std::process::exit(1);
            }
        };
        let baseline = match ScaleReport::from_json(&baseline) {
            Some(b) => b,
            None => {
                eprintln!("baseline {baseline_path} does not parse as a scale report");
                std::process::exit(1);
            }
        };
        let failures = check_baseline(&report, &baseline, paper);
        if failures > 0 {
            eprintln!("{failures} baseline check(s) failed");
            std::process::exit(1);
        }
        println!("baseline checks passed against {baseline_path}");
    }
}
