//! Regenerates the paper's Section II data-driven findings: Fig. 2 through
//! Fig. 8 and the Table I record samples.
//!
//! ```text
//! cargo run --release -p fairmove-bench --bin figures [-- <exp…> --scale <s>]
//!     exp ∈ {fig2, fig3, fig4, fig5, fig6, fig7, fig8, table1}; default all
//!     s   ∈ {test, small, default, full};                       default small
//! ```
//!
//! Figures 3–8 are statistics of fleet behaviour, so they run one
//! ground-truth (no displacement) simulation at the chosen scale and slice
//! its ledger.

use fairmove_agents::GroundTruthPolicy;
use fairmove_bench::report::{pct, Table};
use fairmove_bench::{parse_scale, Scale};
use fairmove_city::HourOfDay;
use fairmove_data::schema::{GpsRecord, PartitionRecord, StationRecord, TransactionRecord};
use fairmove_data::{ChargingPricing, PriceBand, RegionArchetype};
use fairmove_metrics::findings;
use fairmove_sim::Environment;
use fairmove_telemetry::{RunReport, Telemetry};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = parse_scale(&args);
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| a.starts_with("fig") || a.starts_with("table"))
        .map(String::as_str)
        .collect();
    let want = |name: &str| wanted.is_empty() || wanted.contains(&name);

    println!(
        "== FairMove Section II findings (scale: {}) ==\n",
        scale.name()
    );

    let needs_table1 = want("table1");
    let needs_sim = ["fig3", "fig4", "fig5", "fig6", "fig7", "fig8"]
        .iter()
        .any(|f| want(f));

    // Table I's sample run (always at test scale) and the main ground-truth
    // simulation are independent; fan them out and print in the original
    // order once both are back. Only the main run carries telemetry.
    let telemetry = Telemetry::enabled();
    let mut envs = fairmove_parallel::ordered_map(
        vec![
            (Scale::Test.sim(), false, needs_table1),
            (scale.sim(), true, needs_sim),
        ],
        |(sim, with_telemetry, needed)| {
            needed.then(|| run_gt_sim(&sim, with_telemetry.then_some(&telemetry)))
        },
    );
    let main_env = envs.pop().expect("two sim jobs");
    let table1_env = envs.pop().expect("two sim jobs");

    if want("fig2") {
        fig2();
    }
    if let Some(env) = &table1_env {
        table1(env);
    }
    if !needs_sim {
        return;
    }

    println!("running ground-truth simulation …\n");
    let env = main_env.expect("main simulation ran");
    export_run_report(&env, &telemetry, scale);

    if want("fig3") {
        fig3(&env);
    }
    if want("fig4") {
        fig4(&env);
    }
    if want("fig5") {
        fig5(&env);
    }
    if want("fig6") {
        fig6(&env);
    }
    if want("fig7") {
        fig7(&env);
    }
    if want("fig8") {
        fig8(&env);
    }
}

/// Runs one ground-truth (no displacement) simulation to completion and
/// returns the finished environment for slicing.
fn run_gt_sim(sim: &fairmove_sim::SimConfig, telemetry: Option<&Telemetry>) -> Environment {
    let mut env = Environment::new(sim.clone());
    if let Some(t) = telemetry {
        env.set_telemetry(t);
    }
    let mut gt = GroundTruthPolicy::for_city(env.city(), sim.fleet_size, sim.seed);
    env.run(&mut gt);
    env
}

/// Serializes the ground-truth run's telemetry as a one-line JSONL run
/// report next to the text output, for cross-commit diffing.
fn export_run_report(env: &Environment, telemetry: &Telemetry, scale: Scale) {
    let pes = env.ledger().profit_efficiencies();
    let mean_pe = pes.iter().sum::<f64>() / pes.len().max(1) as f64;
    let report = RunReport {
        name: "GT".into(),
        context: format!("figures scale={}", scale.name()),
        training_curve: Vec::new(),
        // The figures run has no reward objective; serialized as null.
        average_reward: f64::NAN,
        mean_pe,
        pf: fairmove_metrics::profit_fairness(&pes),
        trips: env.ledger().trips().len() as u64,
        charges: env.ledger().charges().len() as u64,
        expired_requests: env.ledger().expired_requests,
        snapshot: telemetry.snapshot(),
    };
    let path = format!("run_report_figures_{}.jsonl", scale.name());
    let result = std::fs::File::create(&path)
        .and_then(|mut f| fairmove_telemetry::RunReport::write_jsonl([&report], &mut f));
    match result {
        Ok(()) => println!("run report (JSONL): {path}\n"),
        Err(e) => eprintln!("failed to write {path}: {e}\n"),
    }
}

/// Fig. 2: the time-variant charging pricing schedule.
fn fig2() {
    println!("--- Fig. 2: time-variant charging pricing ---");
    let pricing = ChargingPricing::default();
    let mut t = Table::new(&["hour", "band", "CNY/kWh"]);
    for h in HourOfDay::all() {
        let band = match pricing.band_at(h) {
            PriceBand::OffPeak => "off-peak",
            PriceBand::Flat => "flat",
            PriceBand::Peak => "peak",
        };
        t.row(&[
            h.to_string(),
            band.to_string(),
            format!("{:.1}", pricing.rate_at(h)),
        ]);
    }
    t.print();
    println!("paper rates: off-peak 0.9, flat 1.2, peak 1.6 CNY/kWh\n");
}

/// Table I: example records of each dataset (from the test-scale sample
/// simulation run in `main`).
fn table1(env: &Environment) {
    println!("--- Table I: dataset record samples ---");
    let trip = &env.ledger().trips()[0];
    let gps = GpsRecord {
        vehicle_id: trip.taxi.0,
        position: env.city().region(trip.origin).centroid,
        timestamp: trip.pickup_at,
        direction_deg: 135.0,
        speed_kmh: 32.0,
        occupied: true,
    };
    println!("GPS:         {}", gps.to_csv());
    let tx = TransactionRecord {
        vehicle_id: trip.taxi.0,
        pickup_time: trip.pickup_at,
        dropoff_time: trip.dropoff_at,
        pickup_pos: env.city().region(trip.origin).centroid,
        dropoff_pos: env.city().region(trip.destination).centroid,
        operating_km: trip.distance_km,
        cruising_km: f64::from(trip.cruise_minutes) * 0.25,
        fare_cny: trip.fare_cny,
    };
    println!("Transaction: {}", tx.to_csv());
    let st = env.city().stations().first().expect("has stations");
    let station = StationRecord {
        station_id: st.id,
        name: format!("Station {}", st.id),
        position: st.position,
        fast_points: st.charging_points,
    };
    println!("Station:     {}", station.to_csv());
    let r = &env.city().partition().regions()[0];
    let partition = PartitionRecord {
        region_id: r.id,
        centroid: r.centroid,
        area_km2: r.area_km2,
    };
    println!("Partition:   {}\n", partition.to_csv());
}

/// Fig. 3: CDF of per-event charge time. Paper: 73.5% of events in 45–120 min.
fn fig3(env: &Environment) {
    println!("--- Fig. 3: charge-time distribution ---");
    let cdf = findings::charge_durations(env.ledger());
    let mut t = Table::new(&["quantile", "minutes"]);
    for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
        t.row(&[
            format!("P{:.0}", q * 100.0),
            format!("{:.0}", cdf.quantile(q)),
        ]);
    }
    t.print();
    println!(
        "fraction in 45–120 min: {} (paper: 73.5%)\n",
        pct(cdf.fraction_in(45.0, 120.0))
    );
}

/// Fig. 4: charging events per hour — peaks in the cheap windows.
fn fig4(env: &Environment) {
    println!("--- Fig. 4: charging events per hour ---");
    let pricing = ChargingPricing::default();
    let hist = findings::charge_events_by_hour(env.ledger());
    let max = *hist.iter().max().unwrap_or(&1) as f64;
    let mut t = Table::new(&["hour", "band", "events", "histogram"]);
    for h in HourOfDay::all() {
        let band = match pricing.band_at(h) {
            PriceBand::OffPeak => "off",
            PriceBand::Flat => "flat",
            PriceBand::Peak => "peak",
        };
        let n = hist[h.index()];
        let bar = "#".repeat(((f64::from(n) / max) * 40.0) as usize);
        t.row(&[h.to_string(), band.into(), n.to_string(), bar]);
    }
    t.print();
    println!("paper peaks: 2:00–6:00, 12:00–14:00, 17:00–18:00 (cheap windows)\n");
}

/// Fig. 5: CDF of first cruise time after charging.
/// Paper: 40% under 10 min, ~10% over an hour.
fn fig5(env: &Environment) {
    println!("--- Fig. 5: first cruise time after charging ---");
    let cdf = findings::first_cruise_after_charge(env.ledger());
    println!("samples: {}", cdf.len());
    println!(
        "≤ 10 min: {} (paper ≈ 40%)",
        pct(cdf.fraction_at_or_below(10.0))
    );
    println!(
        "> 60 min: {} (paper ≈ 10%)",
        pct(1.0 - cdf.fraction_at_or_below(60.0))
    );
    let mut t = Table::new(&["quantile", "minutes"]);
    for q in [0.25, 0.5, 0.75, 0.9] {
        t.row(&[
            format!("P{:.0}", q * 100.0),
            format!("{:.0}", cdf.quantile(q)),
        ]);
    }
    t.print();
    println!();
}

/// Fig. 6: first cruise time differs by charging station.
fn fig6(env: &Environment) {
    println!("--- Fig. 6: first cruise time by station (3 busiest) ---");
    let by_station = findings::first_cruise_by_station(env.ledger());
    let mut stations: Vec<_> = by_station.iter().collect();
    stations.sort_by_key(|(_, v)| std::cmp::Reverse(v.len()));
    let mut t = Table::new(&["station", "samples", "P25", "median", "P75"]);
    for (id, samples) in stations.iter().take(3) {
        let cdf = fairmove_metrics::Cdf::new(samples.iter().copied());
        t.row(&[
            id.to_string(),
            samples.len().to_string(),
            format!("{:.0}", cdf.quantile(0.25)),
            format!("{:.0}", cdf.median()),
            format!("{:.0}", cdf.quantile(0.75)),
        ]);
    }
    t.print();
    println!("paper: medians differ across stations — station choice affects t_cruise^(1)\n");
}

/// Fig. 7: average per-trip revenue by region at three time windows.
fn fig7(env: &Environment) {
    println!("--- Fig. 7: per-trip revenue by region and time window ---");
    let n = env.city().n_regions();
    let windows = [
        (0u8, 1u8, "late night 00–01"),
        (8, 9, "morning rush 08–09"),
        (18, 19, "evening rush 18–19"),
    ];
    let mut t = Table::new(&[
        "window",
        "regions",
        "min",
        "mean",
        "max",
        "airport",
        "suburb mean",
    ]);
    for (start, end, label) in windows {
        let revenue = findings::per_region_trip_revenue(env.ledger(), n, start, end);
        let vals: Vec<f64> = revenue.iter().filter_map(|v| *v).collect();
        if vals.is_empty() {
            continue;
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        let airport = env
            .demand()
            .airport()
            .and_then(|a| revenue[a.index()])
            .map(|v| format!("{v:.0}"))
            .unwrap_or_else(|| "-".into());
        let suburb: Vec<f64> = (0..n)
            .filter(|&i| {
                env.demand().archetype(fairmove_city::RegionId(i as u16)) == RegionArchetype::Suburb
            })
            .filter_map(|i| revenue[i])
            .collect();
        let suburb_mean = if suburb.is_empty() {
            "-".to_string()
        } else {
            format!("{:.0}", suburb.iter().sum::<f64>() / suburb.len() as f64)
        };
        t.row(&[
            label.into(),
            vals.len().to_string(),
            format!("{min:.0}"),
            format!("{mean:.0}"),
            format!("{max:.0}"),
            airport,
            suburb_mean,
        ]);
    }
    t.print();
    println!("paper: revenue ranges several CNY → 100+ CNY; airport always high\n");
}

/// Fig. 8: CDF of hourly profit efficiency without displacement.
/// Paper: P20 ≈ 36, P80 ≈ 51 — a 42% gap.
fn fig8(env: &Environment) {
    println!("--- Fig. 8: profit-efficiency distribution (no displacement) ---");
    let cdf = findings::profit_efficiency_distribution(env.ledger());
    let mut t = Table::new(&["quantile", "CNY/h"]);
    for q in [0.05, 0.2, 0.5, 0.8, 0.95] {
        t.row(&[
            format!("P{:.0}", q * 100.0),
            format!("{:.1}", cdf.quantile(q)),
        ]);
    }
    t.print();
    let gap = cdf.quantile(0.8) / cdf.quantile(0.2).max(1e-9) - 1.0;
    println!("P80 vs P20 gap: {} (paper: +42%)\n", pct(gap));
}
