//! Resilience benchmark: how gracefully does each displacement method
//! degrade under infrastructure faults?
//!
//! ```text
//! cargo run --release -p fairmove-bench --bin resilience [-- --smoke | --scale <s>]
//!     --smoke   test scale, fewer methods (the CI smoke job)
//!     s ∈ {test, small, default, full};   default small
//! ```
//!
//! Every method is trained fault-free under the training watchdog, frozen,
//! and then evaluated once per named fault scenario (calm, charger-outage,
//! demand-shock, comms-degraded, combined — see `fairmove_faults::scenario`)
//! on the shared evaluation seed. Policies run wrapped in
//! [`ResilientPolicy`], so malformed outputs and tripped health checks
//! degrade to a stay/nearest-charge fallback instead of crashing the run.
//!
//! Per (method, scenario) one [`RunReport`] line goes to
//! `run_reports_resilience.jsonl`; its telemetry snapshot carries the
//! `faults.*` injection counters and `resilient.*` fallback counters.

use fairmove_bench::report::Table;
use fairmove_bench::{parse_scale, Scale};
use fairmove_core::method::{Method, MethodKind};
use fairmove_core::runner::Runner;
use fairmove_core::watchdog::WatchdogConfig;
use fairmove_sim::{FleetShape, ResilientPolicy};
use fairmove_telemetry::{RunReport, Telemetry};

/// Fault-plan seed: fixed so every method faces the identical scenarios.
const FAULT_SEED: u64 = 4242;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = if smoke {
        Scale::Test
    } else {
        parse_scale(&args)
    };
    let methods: &[MethodKind] = if smoke {
        &[MethodKind::Sd2, MethodKind::FairMove]
    } else {
        &[
            MethodKind::Gt,
            MethodKind::Sd2,
            MethodKind::Dqn,
            MethodKind::FairMove,
        ]
    };

    let sim = scale.sim();
    let shape = FleetShape {
        n_regions: sim.city.n_regions as u16,
        n_stations: sim.city.n_stations as u16,
        fleet_size: sim.fleet_size as u32,
        horizon_slots: sim.days * fairmove_city::SLOTS_PER_DAY,
    };
    let battery = fairmove_faults::scenario_battery(FAULT_SEED, &shape);
    println!(
        "== FairMove resilience (scale: {}, {} methods x {} scenarios) ==\n",
        scale.name(),
        methods.len(),
        battery.len()
    );

    let city = fairmove_city::City::generate(sim.city.clone());

    // One job per method: guarded fault-free training, then the frozen
    // policy against every fault scenario. Jobs are independent (own
    // environments, RNG streams, telemetry registries), so they fan out
    // over worker threads; blocks and reports are collected in method
    // order, keeping stdout and the JSONL byte-identical to a serial run.
    let per_method = fairmove_parallel::ordered_map(methods.to_vec(), |kind| {
        let mut block = String::new();
        let mut method_reports: Vec<RunReport> = Vec::new();
        let mut method = Method::build(kind, &city, &sim, 0.6);
        // Fault-free training under the watchdog (the paper's protocol:
        // evaluation faults are never seen during training).
        let trainer = Runner::new(sim.clone(), scale.train_episodes(), 0.6);
        let (curve, watchdog) = if kind.is_learning() {
            trainer.train_guarded(&mut method, &WatchdogConfig::default())
        } else {
            (Vec::new(), Default::default())
        };
        method.freeze();
        if watchdog.bad_episodes() > 0 {
            block.push_str(&format!(
                "{}: watchdog intervened during training ({} restores, {} unrecovered)\n",
                kind.name(),
                watchdog.restores,
                watchdog.unrecovered
            ));
        }

        let mut calm_pe = f64::NAN;
        let mut table = Table::new(&[
            "scenario",
            "mean PE",
            "vs calm",
            "PF",
            "trips",
            "injected",
            "fallbacks",
        ]);
        for (name, plan) in &battery {
            let telemetry = Telemetry::enabled();
            let runner = Runner::new(sim.clone(), 0, 0.6).with_telemetry(&telemetry);
            // Identical exploration stream per scenario, so differences come
            // from the faults alone.
            method.as_policy().reseed_exploration(FAULT_SEED);
            let mut wrapped = ResilientPolicy::new(method.as_policy());
            let outcome = runner.run_once_with_faults(&mut wrapped, sim.seed, Some(plan));
            let stats = *wrapped.stats();
            drop(wrapped);
            if *name == "calm" {
                calm_pe = outcome.mean_pe;
            }
            let snap = telemetry.snapshot();
            let injected = snap.counter("faults.active_slots").unwrap_or(0);
            table.row(&[
                (*name).into(),
                format!("{:.1}", outcome.mean_pe),
                if calm_pe.is_finite() && calm_pe.abs() > f64::EPSILON {
                    format!("{:+.1}%", 100.0 * (outcome.mean_pe - calm_pe) / calm_pe)
                } else {
                    "-".into()
                },
                format!("{:.1}", outcome.pf),
                outcome.ledger.trips().len().to_string(),
                injected.to_string(),
                format!(
                    "{}+{}",
                    stats.fallback_slots + stats.fallback_actions,
                    stats.health_trips
                ),
            ]);
            method_reports.push(runner.run_report(kind.name(), name, &curve, &outcome));
        }
        block.push_str(&format!("--- {} under fault scenarios ---\n", kind.name()));
        block.push_str(&table.render());
        block.push('\n');
        (block, method_reports)
    });

    let mut reports: Vec<RunReport> = Vec::new();
    for (block, mut method_reports) in per_method {
        print!("{block}");
        reports.append(&mut method_reports);
    }

    let path = "run_reports_resilience.jsonl";
    let result =
        std::fs::File::create(path).and_then(|mut f| RunReport::write_jsonl(&reports, &mut f));
    match result {
        Ok(()) => println!("run reports (JSONL): {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}
