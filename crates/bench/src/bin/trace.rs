//! Deep-tracing bench: span overhead, decide-latency percentiles, and a
//! ready-to-open Chrome trace of one slot.
//!
//! Runs frozen CMA2C inference twice over the same steady-state window —
//! tracing off, then tracing on (with the sampling profiler attached) — and
//! reports the per-slot cost of the span layer. Then it clears the rings,
//! steps one more traced slot, and dumps that slot's complete span tree
//! (`step_slot → observe → decide → wave → matmul`, plus `commit`) as
//! Chrome trace-event JSON.
//!
//! Outputs (all into the working directory unless `--out` moves the
//! report):
//! - `BENCH_trace.json` — traced/untraced ns per slot, span overhead,
//!   events per slot, and p50/p99/p999 decide latency.
//! - `trace_slot.json` — one slot's span tree; open in Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing`.
//! - `profile.folded` — folded stacks from the sampling profiler
//!   (flamegraph.pl / speedscope format).
//!
//! Flags:
//! - `--smoke`: Test scale and a short window; the CI trace-smoke job runs
//!   this on every push.
//! - `--enforce-budget`: exit nonzero if the measured span overhead exceeds
//!   the checked-in budget (`crates/bench/baselines/trace_budget.json`).
//! - `--out <path>`: where to write the report (default `BENCH_trace.json`).

use fairmove_agents::{Cma2cConfig, Cma2cPolicy};
use fairmove_bench::Scale;
use fairmove_city::City;
use fairmove_sim::{DisplacementPolicy, Environment};
use fairmove_telemetry::trace;
use fairmove_telemetry::Telemetry;
use std::time::Instant;

/// Steps `slots` slots and returns elapsed nanoseconds.
fn timed_slots(env: &mut Environment, policy: &mut dyn DisplacementPolicy, slots: usize) -> u64 {
    let start = Instant::now();
    for _ in 0..slots {
        let feedback = env.step_slot(policy);
        policy.observe(feedback);
    }
    start.elapsed().as_nanos() as u64
}

/// A fresh steady-state environment + frozen policy pair at `scale`.
fn fresh(scale: Scale, telemetry: &Telemetry) -> (Environment, Cma2cPolicy) {
    let config = scale.sim();
    let city = City::generate(config.city.clone());
    let mut policy = Cma2cPolicy::new(&city, Cma2cConfig::default());
    policy.freeze();
    let mut env = Environment::new(config);
    env.disable_audit();
    env.prepare_steady_state();
    env.set_telemetry(telemetry);
    (env, policy)
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Extracts `"key":<number>` from a flat JSON document.
fn field_f64(obj: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = obj.find(&needle)? + needle.len();
    let rest = obj[at..].trim_start();
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let enforce_budget = args.iter().any(|a| a == "--enforce-budget");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_trace.json");

    let (scale, warmup, slots) = if smoke {
        (Scale::Test, 6, 24)
    } else {
        (Scale::Default, 12, 48)
    };

    // Pass 1: tracing off — the baseline cost of a slot.
    trace::set_enabled(false);
    let tel_off = Telemetry::enabled();
    let (mut env, mut policy) = fresh(scale, &tel_off);
    timed_slots(&mut env, &mut policy, warmup);
    let untraced_ns = timed_slots(&mut env, &mut policy, slots);

    // Pass 2: tracing on, profiler sampling — the instrumented cost.
    trace::set_enabled(true);
    let tel_on = Telemetry::enabled();
    let (mut env, mut policy) = fresh(scale, &tel_on);
    timed_slots(&mut env, &mut policy, warmup);
    trace::reset();
    let profiler = trace::start_profiler(997);
    let traced_ns = timed_slots(&mut env, &mut policy, slots);
    let folded = profiler.stop();
    let events_per_slot =
        trace::collect_events().len().min(trace::RING_EVENTS) as f64 / slots as f64;

    // One clean slot for the Chrome trace: empty the rings, step once.
    trace::reset();
    timed_slots(&mut env, &mut policy, 1);
    trace::set_enabled(false);
    let slot_events = trace::collect_events();
    let chrome = trace::chrome_trace_json(&slot_events);
    match trace::validate_chrome_trace(&chrome) {
        Ok(n) => eprintln!("trace_slot.json: {n} events validate"),
        Err(e) => {
            eprintln!("generated Chrome trace failed validation: {e}");
            std::process::exit(1);
        }
    }
    let depths: std::collections::BTreeSet<u32> = slot_events.iter().map(|e| e.depth).collect();
    if depths.len() < 3 {
        eprintln!(
            "span tree too shallow: expected >= 3 nesting levels, got {:?}",
            depths
        );
        std::process::exit(1);
    }

    // Decide-latency percentiles from the labeled histogram.
    let snapshot = tel_on.snapshot();
    let decide = snapshot
        .histograms
        .iter()
        .find(|h| h.base_name() == "decide.latency_seconds")
        .expect("traced run must record decide latency");
    let (p50, p99, p999) = (
        decide.quantile(0.5),
        decide.quantile(0.99),
        decide.quantile(0.999),
    );

    let untraced_ns_per_slot = untraced_ns as f64 / slots as f64;
    let traced_ns_per_slot = traced_ns as f64 / slots as f64;
    let overhead_ns_per_slot = traced_ns_per_slot - untraced_ns_per_slot;

    println!(
        "{}: untraced {:.1} µs/slot, traced {:.1} µs/slot, span overhead {:.1} µs/slot",
        scale.name(),
        untraced_ns_per_slot / 1000.0,
        traced_ns_per_slot / 1000.0,
        overhead_ns_per_slot / 1000.0,
    );
    println!(
        "decide latency [{}]: p50 {:.6}s p99 {:.6}s p999 {:.6}s over {} calls",
        decide.name, p50, p99, p999, decide.count,
    );
    println!(
        "{:.1} span events/slot; {} distinct nesting levels",
        events_per_slot,
        depths.len()
    );

    let report = format!(
        "{{\"version\":1,\"scale\":\"{}\",\"slots\":{},\
         \"untraced_ns_per_slot\":{},\"traced_ns_per_slot\":{},\
         \"span_overhead_ns_per_slot\":{},\"events_per_slot\":{},\
         \"nesting_levels\":{},\
         \"decide_latency_p50_seconds\":{},\"decide_latency_p99_seconds\":{},\
         \"decide_latency_p999_seconds\":{}}}\n",
        scale.name(),
        slots,
        json_f64(untraced_ns_per_slot),
        json_f64(traced_ns_per_slot),
        json_f64(overhead_ns_per_slot),
        json_f64(events_per_slot),
        depths.len(),
        json_f64(p50),
        json_f64(p99),
        json_f64(p999),
    );

    for (path, contents) in [
        (out_path, report.as_str()),
        ("trace_slot.json", chrome.as_str()),
        ("profile.folded", folded.as_str()),
    ] {
        if let Err(e) = std::fs::write(path, contents) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }

    if enforce_budget {
        let budget_text = include_str!("../../baselines/trace_budget.json");
        let budget = field_f64(budget_text, "span_overhead_budget_ns_per_slot")
            .expect("trace_budget.json must carry span_overhead_budget_ns_per_slot");
        if overhead_ns_per_slot > budget {
            eprintln!(
                "span overhead {overhead_ns_per_slot:.0} ns/slot exceeds the \
                 checked-in budget of {budget:.0} ns/slot"
            );
            std::process::exit(1);
        }
        println!(
            "span overhead within budget ({:.0} ns/slot <= {:.0} ns/slot)",
            overhead_ns_per_slot, budget
        );
    }
}
