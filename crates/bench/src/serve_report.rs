//! The `BENCH_serve.json` schema: serialization and parsing, dependency-free.
//!
//! The `serve` binary drives a live [`fairmove_serve::DispatchServer`] with
//! concurrent deadline-carrying clients, then force-kills the worker and
//! measures warm restart. One flat [`ServeReport`] captures the service-side
//! numbers the ISSUE cares about: decision throughput, tail latency, shed
//! rate, recovery time, and whether the revived server's state digest
//! matched the pre-kill digest bit for bit. Same hand-rolled JSON idiom as
//! [`crate::scale_report`] — this workspace carries no JSON dependency.

use std::fmt::Write as _;

/// A full `BENCH_serve.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Concurrent load-generator clients.
    pub clients: usize,
    /// Requests attempted per client.
    pub requests_per_client: usize,
    /// Requests answered `OK`.
    pub ok: u64,
    /// Requests shed (`ERR 429` queue-full or `ERR 503` deadline).
    pub shed: u64,
    /// Displacement decisions returned across all `OK decide` responses.
    pub decisions: u64,
    /// Decision throughput over the load window, decisions per second.
    pub decisions_per_sec: f64,
    /// Median request latency over answered requests, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Shed fraction of all attempted requests, `0.0..=1.0`.
    pub shed_rate: f64,
    /// Wall time from starting the revived server to its first `OK digest`
    /// response (checkpoint restore + journal replay + bind), milliseconds.
    pub recovery_ms: f64,
    /// Journal records replayed during that recovery.
    pub replayed: u64,
    /// Whether the revived digest matched the pre-kill digest exactly.
    pub digest_match: bool,
}

impl ServeReport {
    /// Serializes the report as one line of JSON (plus trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"version\":1,\"clients\":{},\"requests_per_client\":{},\
             \"ok\":{},\"shed\":{},\"decisions\":{},\
             \"decisions_per_sec\":{},\"p50_ms\":{},\"p99_ms\":{},\
             \"shed_rate\":{},\"recovery_ms\":{},\"replayed\":{},\
             \"digest_match\":{}}}",
            self.clients,
            self.requests_per_client,
            self.ok,
            self.shed,
            self.decisions,
            json_f64(self.decisions_per_sec),
            json_f64(self.p50_ms),
            json_f64(self.p99_ms),
            json_f64(self.shed_rate),
            json_f64(self.recovery_ms),
            self.replayed,
            self.digest_match,
        );
        out.push('\n');
        out
    }

    /// Parses a report produced by [`Self::to_json`]. Returns `None` on any
    /// structural mismatch rather than guessing; unknown fields are ignored.
    pub fn from_json(text: &str) -> Option<ServeReport> {
        Some(ServeReport {
            clients: field_f64(text, "clients")? as usize,
            requests_per_client: field_f64(text, "requests_per_client")? as usize,
            ok: field_f64(text, "ok")? as u64,
            shed: field_f64(text, "shed")? as u64,
            decisions: field_f64(text, "decisions")? as u64,
            decisions_per_sec: field_f64(text, "decisions_per_sec")?,
            p50_ms: field_f64(text, "p50_ms")?,
            p99_ms: field_f64(text, "p99_ms")?,
            shed_rate: field_f64(text, "shed_rate")?,
            recovery_ms: field_f64(text, "recovery_ms")?,
            replayed: field_f64(text, "replayed")? as u64,
            digest_match: field_bool(text, "digest_match")?,
        })
    }
}

/// Finite floats print as shortest-round-trip Rust `{}`, which is valid
/// JSON; non-finite values have no JSON form and become `null`.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Extracts `"key":<number>` from a flat JSON document.
fn field_f64(obj: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = obj.find(&needle)? + needle.len();
    let rest = obj[at..].trim_start();
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Extracts `"key":true|false`.
fn field_bool(obj: &str, key: &str) -> Option<bool> {
    let needle = format!("\"{key}\":");
    let at = obj.find(&needle)? + needle.len();
    let rest = obj[at..].trim_start();
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeReport {
        ServeReport {
            clients: 4,
            requests_per_client: 200,
            ok: 760,
            shed: 40,
            decisions: 45_600,
            decisions_per_sec: 1520.5,
            p50_ms: 2.25,
            p99_ms: 18.75,
            shed_rate: 0.05,
            recovery_ms: 41.5,
            replayed: 17,
            digest_match: true,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample();
        let parsed = ServeReport::from_json(&report.to_json()).expect("own output must parse");
        assert_eq!(parsed, report);
    }

    #[test]
    fn json_is_machine_readable_shape() {
        let json = sample().to_json();
        assert!(json.starts_with("{\"version\":1,"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"digest_match\":true"));
    }

    #[test]
    fn a_failed_digest_survives_the_round_trip() {
        let mut report = sample();
        report.digest_match = false;
        let parsed = ServeReport::from_json(&report.to_json()).expect("parses");
        assert!(!parsed.digest_match);
    }

    #[test]
    fn malformed_documents_parse_to_none() {
        assert!(ServeReport::from_json("").is_none());
        assert!(ServeReport::from_json("{\"clients\":4}").is_none());
        assert!(ServeReport::from_json(
            &sample()
                .to_json()
                .replace("\"digest_match\":true", "\"digest_match\":7")
        )
        .is_none());
    }
}
