//! Policy-latency microbenchmarks: per-slot decide() cost of each method on
//! a realistic observation — the quantity that bounds how large a fleet one
//! decision server can displace in real time.

use criterion::{criterion_group, criterion_main, Criterion};
use fairmove_core::method::{Method, MethodKind};
use fairmove_sim::{Environment, SimConfig};
use std::time::Duration;

fn bench_agents(c: &mut Criterion) {
    let mut group = c.benchmark_group("agents_decide");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);

    let sim = SimConfig::default();
    let env = Environment::new(sim.clone());
    let city = env.city().clone();
    let obs = env.observation();
    let ctxs = env.decision_contexts();

    for kind in MethodKind::all() {
        let mut method = Method::build(kind, &city, &sim, 0.6);
        method.freeze();
        group.bench_function(format!("{}_600_taxis", kind.name()), |b| {
            b.iter(|| method.as_policy().decide(&obs, &ctxs));
        });
    }

    group.finish();
}

criterion_group!(benches, bench_agents);
criterion_main!(benches);
