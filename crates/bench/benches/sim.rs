//! Simulator microbenchmarks: slot stepping, full-day throughput,
//! observation construction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fairmove_sim::policy::StayPolicy;
use fairmove_sim::{Environment, SimConfig};
use std::time::Duration;

fn bench_step_slot(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);

    group.bench_function("step_slot_600_taxis", |b| {
        b.iter_batched(
            || Environment::new(SimConfig::default()),
            |mut env| {
                let mut policy = StayPolicy;
                for _ in 0..6 {
                    let _ = env.step_slot(&mut policy);
                }
                env
            },
            BatchSize::LargeInput,
        );
    });

    group.bench_function("full_day_60_taxis", |b| {
        b.iter_batched(
            || Environment::new(SimConfig::test_scale()),
            |mut env| {
                let mut policy = StayPolicy;
                env.run(&mut policy);
                env
            },
            BatchSize::LargeInput,
        );
    });

    group.bench_function("observation_600_taxis", |b| {
        let env = Environment::new(SimConfig::default());
        b.iter(|| env.observation());
    });

    group.bench_function("decision_contexts_600_taxis", |b| {
        let env = Environment::new(SimConfig::default());
        b.iter(|| env.decision_contexts());
    });

    group.finish();
}

criterion_group!(benches, bench_step_slot);
criterion_main!(benches);
