//! City/data-substrate microbenchmarks: partition generation, station
//! indexing, and demand/trip generation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use fairmove_city::station::place_stations;
use fairmove_city::{
    City, CityConfig, NearestStations, Rect, SimTime, TravelModel, UrbanPartition,
};
use fairmove_data::{DemandModel, FareModel, TripGenerator};
use std::time::Duration;

fn bench_city(c: &mut Criterion) {
    let mut group = c.benchmark_group("city");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);

    group.bench_function("voronoi_partition_491_regions", |b| {
        b.iter(|| UrbanPartition::generate(Rect::with_size(50.0, 25.0), 491, 42));
    });

    group.bench_function("city_generate_default", |b| {
        b.iter(|| City::generate(CityConfig::default()));
    });

    group.bench_function("nearest_station_index_491x123", |b| {
        let p = UrbanPartition::generate(Rect::with_size(50.0, 25.0), 491, 42);
        let s = place_stations(&p, 123, 5000, 42);
        let travel = TravelModel::default();
        b.iter(|| NearestStations::build(&p, &s, &travel, 5));
    });

    group.bench_function("trip_generation_one_slot_shenzhen_demand", |b| {
        let city = City::generate(CityConfig::shenzhen_scale());
        let demand = DemandModel::new(&city, 750_000.0, 1);
        let mut gen = TripGenerator::new(&city, demand, FareModel::default(), 2);
        let mut t = SimTime::ZERO;
        b.iter(|| {
            let trips = gen.generate_slot(t);
            t += 10;
            trips
        });
    });

    group.finish();
}

criterion_group!(benches, bench_city);
criterion_main!(benches);
