//! RL-substrate microbenchmarks: MLP forward/backward and Adam steps at the
//! shapes the agents actually use (22-wide state–action input, 64×64
//! hidden).

use criterion::{criterion_group, criterion_main, Criterion};
use fairmove_rl::{Activation, Adam, Matrix, Mlp, Optimizer};
use std::time::Duration;

fn net() -> Mlp {
    Mlp::new(&[22, 64, 64, 1], Activation::Relu, Activation::Linear, 7)
}

fn batch(n: usize) -> Matrix {
    Matrix::from_vec(n, 22, (0..n * 22).map(|i| (i % 13) as f64 / 13.0).collect())
}

fn bench_rl(c: &mut Criterion) {
    let mut group = c.benchmark_group("rl");
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));
    group.sample_size(10);

    group.bench_function("forward_batch_128", |b| {
        let net = net();
        let x = batch(128);
        b.iter(|| net.forward(&x));
    });

    group.bench_function("forward_single", |b| {
        let net = net();
        let x: Vec<f64> = (0..22).map(|i| i as f64 / 22.0).collect();
        b.iter(|| net.forward_one(&x));
    });

    group.bench_function("forward_backward_batch_128", |b| {
        let mut net = net();
        let x = batch(128);
        b.iter(|| {
            let y = net.forward_train(&x);
            net.backward(&y)
        });
    });

    group.bench_function("adam_step_batch_128", |b| {
        let mut net = net();
        let mut adam = Adam::new(1e-3);
        let x = batch(128);
        b.iter(|| {
            let y = net.forward_train(&x);
            let grads = net.backward(&y);
            adam.step(&mut net, &grads);
        });
    });

    group.bench_function("matmul_128x64_64x64", |b| {
        let a = Matrix::from_vec(128, 64, (0..128 * 64).map(|i| i as f64).collect());
        let w = Matrix::from_vec(64, 64, (0..64 * 64).map(|i| i as f64).collect());
        b.iter(|| a.matmul_transpose_b(&w));
    });

    group.finish();
}

criterion_group!(benches, bench_rl);
criterion_main!(benches);
