//! Reusable slot-scoped buffers for the per-slot hot path.
//!
//! The simulator and the learned policies both run the same loop shape: a
//! burst of scratch data is built up during one decision slot (candidate
//! features, per-minute arrival buckets, stacked activation matrices) and
//! is dead the moment the slot ends. Allocating that scratch from the
//! global heap every slot costs more than the arithmetic it feeds at paper
//! scale, so this crate provides the three buffer disciplines the hot path
//! uses instead, all dependency-free:
//!
//! * [`Bump`] — a bump-style scratch arena: monotone append during the
//!   slot, one O(1) reset between slots, capacity retained forever.
//! * [`VecPool`] — a pool of reusable `Vec<T>` buffers for scratch whose
//!   count varies (per-minute arrival buckets): `take` hands out a cleared
//!   buffer, `put` returns it, and the outstanding count makes leaks
//!   auditable.
//! * [`Poison`] — debug-build sentinel values ([`poison_fill`]) so a buffer
//!   that is supposed to be fully rewritten each slot cannot silently leak
//!   last slot's values: stale reads see NaN / `u32::MAX` and the
//!   simulator's invariant auditor checks the fill between slots.
//!
//! Every container tracks a byte high-water mark so the embedding layer
//! (sim, agents) can mirror steady-state scratch footprint into telemetry
//! gauges without this crate depending on the telemetry crate.
//!
//! None of these types allocate after their high-water capacity is reached:
//! that is the property the `fairmove-testkit` counting-allocator tests pin
//! for `Environment::step_slot` and the batched CMA2C `decide()`.

/// Usage counters shared by every arena container, for telemetry mirrors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Largest backing capacity ever held, in bytes.
    pub high_water_bytes: usize,
    /// Buffers currently handed out (pools) or live elements (bump).
    pub outstanding: usize,
    /// Total take/append operations served.
    pub takes: u64,
    /// Operations that had to grow or allocate (cold path).
    pub misses: u64,
}

/// A bump-style scratch arena over `Vec<T>`: values are appended during a
/// slot and thrown away all at once between slots. `clear` is O(1) and
/// never releases capacity, so after warmup every append lands in already
/// owned memory.
#[derive(Debug, Clone)]
pub struct Bump<T> {
    data: Vec<T>,
    takes: u64,
    misses: u64,
}

impl<T> Default for Bump<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Bump<T> {
    /// An empty arena (no backing storage until first use).
    pub fn new() -> Self {
        Bump {
            data: Vec::new(),
            takes: 0,
            misses: 0,
        }
    }

    /// Drops all live values, keeping capacity.
    #[inline]
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Appends one value.
    #[inline]
    pub fn push(&mut self, value: T) {
        self.takes += 1;
        if self.data.len() == self.data.capacity() {
            self.misses += 1;
        }
        self.data.push(value);
    }

    /// Live values appended since the last [`clear`](Self::clear).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the live values.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Number of live values.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no values are live (the between-slots state).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Usage counters for telemetry mirrors.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            high_water_bytes: self.data.capacity() * std::mem::size_of::<T>(),
            outstanding: self.data.len(),
            takes: self.takes,
            misses: self.misses,
        }
    }
}

impl<T: Clone> Bump<T> {
    /// Appends a whole slice.
    #[inline]
    pub fn extend_from_slice(&mut self, values: &[T]) {
        self.takes += values.len() as u64;
        if self.data.len() + values.len() > self.data.capacity() {
            self.misses += 1;
        }
        self.data.extend_from_slice(values);
    }
}

/// A pool of reusable `Vec<T>` buffers for scratch whose *count* varies per
/// slot. [`take`](Self::take) returns a cleared buffer (reusing a pooled
/// one when available), [`put`](Self::put) returns it to the pool. The
/// [`outstanding`](Self::outstanding) count is the leak detector: between
/// slots it must be zero, and the simulator's invariant auditor checks it.
#[derive(Debug, Clone)]
pub struct VecPool<T> {
    free: Vec<Vec<T>>,
    outstanding: usize,
    takes: u64,
    misses: u64,
    high_water_bytes: usize,
}

impl<T> Default for VecPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> VecPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        VecPool {
            free: Vec::new(),
            outstanding: 0,
            takes: 0,
            misses: 0,
            high_water_bytes: 0,
        }
    }

    /// Hands out a cleared buffer, reusing pooled capacity when available.
    pub fn take(&mut self) -> Vec<T> {
        self.takes += 1;
        self.outstanding += 1;
        match self.free.pop() {
            Some(buf) => buf,
            None => {
                self.misses += 1;
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the pool. The contents are dropped; the
    /// capacity is kept for the next [`take`](Self::take).
    pub fn put(&mut self, mut buf: Vec<T>) {
        assert!(self.outstanding > 0, "put without a matching take");
        buf.clear();
        self.outstanding -= 1;
        let bytes = buf.capacity() * std::mem::size_of::<T>();
        let pooled: usize = self
            .free
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<T>())
            .sum();
        self.high_water_bytes = self.high_water_bytes.max(pooled + bytes);
        self.free.push(buf);
    }

    /// Buffers currently handed out. Zero between slots, or something is
    /// leaking scratch.
    #[inline]
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// True when every taken buffer has been returned.
    #[inline]
    pub fn quiescent(&self) -> bool {
        self.outstanding == 0
    }

    /// Usage counters for telemetry mirrors.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            high_water_bytes: self.high_water_bytes,
            outstanding: self.outstanding,
            takes: self.takes,
            misses: self.misses,
        }
    }
}

/// Sentinel values for debug poison-fill: a buffer that is contractually
/// *fully rewritten* every slot is filled with poison between slots, so a
/// stale read cannot masquerade as live data.
pub trait Poison: Copy + PartialEq {
    /// The sentinel. Chosen to be loud: NaN for floats (propagates through
    /// any arithmetic), `MAX` for counters (fails range checks).
    const POISON: Self;

    /// Whether `self` is the sentinel. Separate from `==` because
    /// `f64::NAN != f64::NAN`.
    fn is_poison(&self) -> bool;
}

impl Poison for f64 {
    const POISON: Self = f64::NAN;
    #[inline]
    fn is_poison(&self) -> bool {
        self.is_nan()
    }
}

impl Poison for u32 {
    const POISON: Self = u32::MAX;
    #[inline]
    fn is_poison(&self) -> bool {
        *self == u32::MAX
    }
}

/// Overwrites every element with the poison sentinel (debug builds use
/// this between slots; release builds skip the write).
pub fn poison_fill<T: Poison>(slice: &mut [T]) {
    for v in slice.iter_mut() {
        *v = T::POISON;
    }
}

/// True when every element is still the poison sentinel — i.e. the buffer
/// is in its freshly-reset between-slots state.
pub fn is_poisoned<T: Poison>(slice: &[T]) -> bool {
    slice.iter().all(Poison::is_poison)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_retains_capacity_across_clears() {
        let mut b: Bump<f64> = Bump::new();
        for i in 0..100 {
            b.push(i as f64);
        }
        let cap_bytes = b.stats().high_water_bytes;
        assert!(cap_bytes >= 100 * 8);
        b.clear();
        assert!(b.is_empty());
        // Refill within capacity: no new misses.
        let misses = b.stats().misses;
        for i in 0..100 {
            b.push(i as f64);
        }
        assert_eq!(b.stats().misses, misses);
        assert_eq!(b.stats().high_water_bytes, cap_bytes);
        assert_eq!(b.len(), 100);
    }

    #[test]
    fn bump_extend_matches_push() {
        let mut a: Bump<u32> = Bump::new();
        let mut b: Bump<u32> = Bump::new();
        a.extend_from_slice(&[1, 2, 3]);
        for v in [1, 2, 3] {
            b.push(v);
        }
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn pool_reuses_returned_buffers() {
        let mut pool: VecPool<u64> = VecPool::new();
        let mut v = pool.take();
        v.extend(0..1000);
        let cap = v.capacity();
        pool.put(v);
        assert!(pool.quiescent());
        let v2 = pool.take();
        assert_eq!(v2.capacity(), cap, "capacity must be retained");
        assert!(v2.is_empty(), "pooled buffers come back cleared");
        assert_eq!(pool.stats().misses, 1, "only the first take allocates");
        pool.put(v2);
    }

    #[test]
    fn pool_outstanding_tracks_leaks() {
        let mut pool: VecPool<u8> = VecPool::new();
        let a = pool.take();
        let _leaked = pool.take();
        assert_eq!(pool.outstanding(), 2);
        pool.put(a);
        assert_eq!(pool.outstanding(), 1);
        assert!(!pool.quiescent());
    }

    #[test]
    #[should_panic(expected = "put without a matching take")]
    fn pool_rejects_unmatched_put() {
        let mut pool: VecPool<u8> = VecPool::new();
        pool.put(Vec::new());
    }

    #[test]
    fn pool_high_water_counts_all_buffers() {
        let mut pool: VecPool<u64> = VecPool::new();
        let mut a = pool.take();
        let mut b = pool.take();
        a.extend(0..100);
        b.extend(0..100);
        a.shrink_to_fit();
        b.shrink_to_fit();
        pool.put(a);
        pool.put(b);
        assert!(pool.stats().high_water_bytes >= 2 * 100 * 8);
    }

    #[test]
    fn poison_roundtrip_f64() {
        let mut v = vec![1.0f64, 2.0, 3.0];
        assert!(!is_poisoned(&v));
        poison_fill(&mut v);
        assert!(is_poisoned(&v));
        v[1] = 0.5;
        assert!(!is_poisoned(&v), "a live value breaks the poison pattern");
    }

    #[test]
    fn poison_roundtrip_u32() {
        let mut v = vec![0u32; 4];
        poison_fill(&mut v);
        assert!(v.iter().all(|&x| x == u32::MAX));
        assert!(is_poisoned(&v));
    }

    #[test]
    fn empty_slices_count_as_poisoned() {
        // Vacuous truth keeps the auditor check simple for zero-length
        // scratch (e.g. before the first slot).
        assert!(is_poisoned::<f64>(&[]));
    }
}
