//! Request deadlines and the admission cost model.
//!
//! Every dispatch request may carry a deadline budget (`STEP 50` = "useless
//! after 50 ms"). The budget propagates with the request: the connection
//! handler rejects before even enqueueing when the predicted service cost
//! already exceeds the remaining budget, and the worker re-checks on
//! dequeue so a request that aged out in the queue is dropped instead of
//! executed into uselessness.
//!
//! Prediction is an EWMA of observed service times, stored as atomic `f64`
//! bits so the single-writer worker publishes and many connection handlers
//! read without locks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// An absolute request deadline.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            at: Instant::now() + budget,
        }
    }

    /// Time left before the deadline, zero once past it.
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.remaining() == Duration::ZERO
    }
}

/// Lock-free EWMA of request service time, in microseconds.
#[derive(Debug)]
pub struct CostModel {
    ewma_us: AtomicU64,
    /// Smoothing factor for new observations.
    alpha: f64,
}

impl CostModel {
    /// Starts with no estimate (predicts zero until the first observation),
    /// smoothing with `alpha` (0 < alpha ≤ 1; higher = more reactive).
    pub fn new(alpha: f64) -> Self {
        CostModel {
            ewma_us: AtomicU64::new(0f64.to_bits()),
            alpha: alpha.clamp(0.01, 1.0),
        }
    }

    /// Folds one observed service time in (single writer: the worker).
    pub fn record(&self, took: Duration) {
        let sample = took.as_secs_f64() * 1e6;
        let old = f64::from_bits(self.ewma_us.load(Ordering::Relaxed));
        let new = if old == 0.0 {
            sample
        } else {
            old + self.alpha * (sample - old)
        };
        self.ewma_us.store(new.to_bits(), Ordering::Relaxed);
    }

    /// The current service-time estimate.
    pub fn predicted(&self) -> Duration {
        Duration::from_secs_f64(f64::from_bits(self.ewma_us.load(Ordering::Relaxed)) / 1e6)
    }

    /// Whether a request with `remaining` budget is worth admitting: the
    /// predicted cost must fit in the budget. No estimate yet = admit.
    pub fn admits(&self, remaining: Duration) -> bool {
        self.predicted() <= remaining
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_expires_and_remaining_saturates() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        let far = Deadline::after(Duration::from_secs(60));
        assert!(!far.expired());
        assert!(far.remaining() > Duration::from_secs(59));
    }

    #[test]
    fn cost_model_tracks_observations() {
        let m = CostModel::new(0.5);
        assert!(m.admits(Duration::ZERO), "no estimate admits everything");
        m.record(Duration::from_millis(10));
        assert_eq!(m.predicted(), Duration::from_millis(10));
        m.record(Duration::from_millis(20));
        assert_eq!(m.predicted(), Duration::from_millis(15));
        assert!(m.admits(Duration::from_millis(16)));
        assert!(!m.admits(Duration::from_millis(14)));
    }
}
