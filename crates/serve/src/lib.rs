//! Crash-safe online dispatch serving for the FairMove reproduction.
//!
//! The paper's displacement system is an *online service*: once per slot
//! the central dispatcher answers "where should each vacant taxi go" for a
//! whole fleet, under real-time constraints. This crate packages the
//! simulator and the frozen CMA2C policy behind a small TCP protocol with
//! the failure-domain engineering such a service needs:
//!
//! * **Deadlines** — requests carry a budget; the server rejects early when
//!   the EWMA cost model predicts a miss, and drops queued requests whose
//!   budget lapsed ([`deadline`]).
//! * **Backpressure** — a bounded admission queue sheds (`ERR 429`) instead
//!   of queueing unboundedly ([`server`]).
//! * **Degradation** — a hysteretic service-level ladder steps from full
//!   CMA2C inference down to stay-put and a stateless greedy oracle under
//!   sustained overload or policy ill-health ([`degrade`]).
//! * **Crash safety** — every mutation is journaled (write-ahead, CRC per
//!   record) before executing; checkpoints are atomic and footer-verified;
//!   warm restart replays the journal on top of the newest valid checkpoint
//!   and provably reproduces the uninterrupted run bit-for-bit
//!   ([`journal`], [`dispatch`]).
//! * **Chaos testability** — [`fairmove_faults::KillPoints`] sites in the
//!   checkpoint and journal paths let tests crash the worker at the worst
//!   possible moments ([`server`]).

pub mod deadline;
pub mod degrade;
pub mod dispatch;
pub mod journal;
pub mod proto;
pub mod retry;
pub mod server;

pub use deadline::{CostModel, Deadline};
pub use degrade::{Degrader, ServiceLevel};
pub use dispatch::{fnv64, DispatchCore};
pub use journal::Journal;
pub use proto::{parse_request, Request};
pub use retry::Backoff;
pub use server::{Client, DispatchServer, RecoveryInfo, ServeConfig};
