//! The dispatch-server binary.
//!
//! ```text
//! fairmove-serve [--addr HOST:PORT] [--metrics HOST:PORT]
//!                [--data-dir DIR] [--scale test|default] [--alpha A]
//!                [--backend exact|quantized]
//! ```
//!
//! Runs until killed. State lives under `--data-dir`; restarting the
//! binary with the same directory warm-restarts from the newest valid
//! checkpoint plus journal replay.

use fairmove_serve::{DispatchServer, ServeConfig};
use fairmove_sim::SimConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut config = ServeConfig::test_scale("fairmove-serve-data");
    config.addr = "127.0.0.1:9177".into();
    config.metrics_addr = Some("127.0.0.1:9184".into());
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--metrics" => config.metrics_addr = Some(value("--metrics")),
            "--no-metrics" => config.metrics_addr = None,
            "--data-dir" => config.data_dir = value("--data-dir").into(),
            "--alpha" => config.alpha = value("--alpha").parse().expect("--alpha must be a number"),
            "--backend" => {
                config.quantized = match value("--backend").as_str() {
                    "exact" => false,
                    "quantized" => true,
                    other => panic!("unknown --backend {other:?} (exact|quantized)"),
                }
            }
            "--scale" => {
                config.sim = match value("--scale").as_str() {
                    "test" => SimConfig::test_scale(),
                    "default" => SimConfig::default(),
                    other => panic!("unknown --scale {other:?} (test|default)"),
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: fairmove-serve [--addr H:P] [--metrics H:P | --no-metrics] \
                     [--data-dir DIR] [--scale test|default] [--alpha A] \
                     [--backend exact|quantized]"
                );
                return;
            }
            other => panic!("unknown argument {other:?} (try --help)"),
        }
    }
    let server = DispatchServer::start(config).expect("start dispatch server");
    eprintln!("fairmove-serve listening on {}", server.addr());
    if let Some(m) = server.metrics_addr() {
        eprintln!("metrics at http://{m}/metrics");
    }
    let recovery = server.recovery();
    if recovery.warm_start_seq.is_some() || recovery.replayed > 0 {
        eprintln!(
            "warm restart: checkpoint {:?}, {} journal records replayed, {} torn bytes discarded",
            recovery.warm_start_seq, recovery.replayed, recovery.torn_bytes
        );
    }
    // Serve until the process is killed (the worker only exits on KILL).
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
