//! The TCP dispatch server.
//!
//! One acceptor thread, one connection-handler thread per client, and a
//! single worker thread that owns the [`DispatchCore`] — dispatch state is
//! single-writer by construction, so crash consistency reduces to the
//! journal/checkpoint discipline in [`crate::journal`] and
//! [`crate::dispatch`].
//!
//! Backpressure is explicit: admission is a bounded queue; when it is full
//! the handler answers `ERR 429 shed` immediately instead of queueing
//! unboundedly, and when a request carries a deadline the handler rejects
//! it up front if the EWMA cost model predicts the budget cannot be met
//! (`ERR 503 deadline`). The worker re-checks on dequeue, so requests that
//! aged out while queued are dropped, not executed.
//!
//! `KILL` (and armed [`KillPoints`]) crash the worker without ceremony —
//! no final checkpoint, no queue drain — which is exactly what the chaos
//! tests need to prove warm restart works from any interruption point.

use crate::deadline::{CostModel, Deadline};
use crate::degrade::Degrader;
use crate::dispatch::{Applied, DispatchCore};
use crate::journal::Journal;
use crate::proto::{parse_request, Request};
use fairmove_core::CheckpointVault;
use fairmove_faults::KillPoints;
use fairmove_sim::SimConfig;
use fairmove_telemetry::server::{serve_metrics, MetricsServer};
use fairmove_telemetry::{buckets, Telemetry};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maximum request-line length; longer lines are rejected and the
/// connection closed (a protocol client never comes close).
const MAX_LINE_BYTES: usize = 4096;
/// Once a partial request line exists, it must complete within this bound
/// (slow-loris protection; an *idle* connection may stay open freely).
const LINE_DEADLINE: Duration = Duration::from_secs(2);
/// Per-read socket timeout while polling for request bytes.
const READ_TIMEOUT: Duration = Duration::from_millis(250);

/// Server configuration.
pub struct ServeConfig {
    /// Simulator configuration (fingerprinted into checkpoints).
    pub sim: SimConfig,
    /// Efficiency/fairness mix for the CMA2C policy.
    pub alpha: f64,
    /// Serve Full-level decisions through the int8-quantized actor instead
    /// of exact f64. Applied after warm restart but *before* journal replay,
    /// so a quantized server's journal replays through the same numerics
    /// that produced it.
    pub quantized: bool,
    /// Directory for the journal and checkpoint vault.
    pub data_dir: PathBuf,
    /// Dispatch listener address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Optional `/metrics` listener address.
    pub metrics_addr: Option<String>,
    /// Admission-queue capacity; beyond it requests shed with `ERR 429`.
    pub queue_depth: usize,
    /// Consecutive overload ticks before the ladder demotes.
    pub demote_after: u32,
    /// Consecutive calm ticks before the ladder promotes.
    pub promote_after: u32,
    /// Service time beyond which a request counts as an overload tick.
    pub step_budget: Duration,
    /// Journal records between automatic checkpoints.
    pub checkpoint_every: u64,
    /// Crash-injection sites (disarmed in production).
    pub kill_points: KillPoints,
    /// Metrics registry (shared with the embedding process).
    pub telemetry: Telemetry,
}

impl ServeConfig {
    /// A test-scale config rooted at `data_dir`, loopback, free ports.
    pub fn test_scale(data_dir: impl Into<PathBuf>) -> Self {
        ServeConfig {
            sim: SimConfig::test_scale(),
            alpha: 0.6,
            quantized: false,
            data_dir: data_dir.into(),
            addr: "127.0.0.1:0".into(),
            metrics_addr: None,
            queue_depth: 64,
            demote_after: 3,
            promote_after: 8,
            step_budget: Duration::from_millis(250),
            checkpoint_every: 32,
            kill_points: KillPoints::disarmed(),
            telemetry: Telemetry::enabled(),
        }
    }
}

/// What warm restart found and did at startup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Sequence of the checkpoint restored, if any.
    pub warm_start_seq: Option<u64>,
    /// Journal records replayed on top of the checkpoint.
    pub replayed: u64,
    /// Torn journal-tail bytes discarded.
    pub torn_bytes: u64,
}

enum Job {
    Client {
        request: Request,
        deadline: Option<Deadline>,
        reply: mpsc::Sender<String>,
    },
    /// Graceful shutdown: final checkpoint, then exit.
    Shutdown,
}

struct Shared {
    queue: SyncSender<Job>,
    depth: AtomicUsize,
    capacity: usize,
    cost: CostModel,
    stop: AtomicBool,
    worker_dead: AtomicBool,
    telemetry: Telemetry,
}

/// A running dispatch server. See the module docs.
pub struct DispatchServer {
    addr: SocketAddr,
    metrics: Option<MetricsServer>,
    shared: Arc<Shared>,
    recovery: RecoveryInfo,
    worker: Option<std::thread::JoinHandle<()>>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl DispatchServer {
    /// Binds the listener, performs warm restart from `data_dir` (latest
    /// valid checkpoint + journal replay), and starts serving.
    pub fn start(config: ServeConfig) -> io::Result<DispatchServer> {
        std::fs::create_dir_all(&config.data_dir)?;
        let telemetry = config.telemetry.clone();
        let mut vault = CheckpointVault::open(&config.data_dir.join("checkpoints"))?;

        // -- warm restart ------------------------------------------------
        let mut recovery = RecoveryInfo::default();
        let mut core = match vault.latest_valid() {
            Some((seq, payload)) => {
                match DispatchCore::from_checkpoint(config.sim.clone(), &payload) {
                    Ok(core) => {
                        recovery.warm_start_seq = Some(seq);
                        core
                    }
                    Err(_) => {
                        // CRC-valid but semantically foreign (config drift):
                        // refuse to guess, start fresh.
                        telemetry.counter("serve.checkpoint_rejected").inc();
                        DispatchCore::new(config.sim.clone(), config.alpha)
                    }
                }
            }
            None => DispatchCore::new(config.sim.clone(), config.alpha),
        };
        core.set_quantized_serving(config.quantized);
        let (mut journal, replay) = Journal::open(&config.data_dir.join("journal.log"))?;
        recovery.torn_bytes = replay.torn_bytes;
        for record in &replay.records {
            if record.seq < core.applied_seq() {
                continue; // already inside the checkpoint
            }
            let _ = core.apply_payload(&record.payload);
            recovery.replayed += 1;
        }
        telemetry.counter("serve.replayed").add(recovery.replayed);

        // -- listeners ---------------------------------------------------
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics = match &config.metrics_addr {
            Some(addr) => Some(serve_metrics(telemetry.clone(), addr)?),
            None => None,
        };

        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
        let shared = Arc::new(Shared {
            queue: tx,
            depth: AtomicUsize::new(0),
            capacity: config.queue_depth.max(1),
            cost: CostModel::new(0.2),
            stop: AtomicBool::new(false),
            worker_dead: AtomicBool::new(false),
            telemetry: telemetry.clone(),
        });

        // -- worker ------------------------------------------------------
        let worker_shared = Arc::clone(&shared);
        let kill_points = config.kill_points.clone();
        let mut degrader = Degrader::new(&telemetry, config.demote_after, config.promote_after);
        let step_budget = config.step_budget;
        let checkpoint_every = config.checkpoint_every.max(1);
        let worker = std::thread::Builder::new()
            .name("fairmove-serve-worker".into())
            .spawn(move || {
                let s = &worker_shared;
                let request_hist = s
                    .telemetry
                    .histogram("serve.request_seconds", buckets::LATENCY_SECONDS);
                let shed_deadline = s.telemetry.counter("serve.shed_deadline");
                let steps = s.telemetry.counter("serve.steps");
                let decides = s.telemetry.counter("serve.decides");
                let journal_records = s.telemetry.counter("serve.journal_records");
                let checkpoints = s.telemetry.counter("serve.checkpoints");
                let depth_gauge = s.telemetry.gauge("serve.queue_depth");
                let mut last_ckpt_at = core.applied_seq();
                'serve: while let Ok(job) = rx.recv() {
                    let Job::Client {
                        request,
                        deadline,
                        reply,
                    } = job
                    else {
                        // Graceful shutdown: leave a fresh checkpoint behind.
                        let _ = vault.persist(&core.checkpoint());
                        checkpoints.inc();
                        break;
                    };
                    let prev_depth = s.depth.fetch_sub(1, Ordering::SeqCst);
                    depth_gauge.set(prev_depth.saturating_sub(1) as f64);
                    s.telemetry.counter("serve.requests").inc();

                    // A queued request whose budget already lapsed is waste
                    // either way; executing it would also delay everyone
                    // behind it. Shed, and count the tick as overload.
                    if request.mutates() {
                        if let Some(d) = &deadline {
                            if d.expired() {
                                shed_deadline.inc();
                                degrader.observe(true, core.healthy());
                                let _ = reply.send("ERR 503 deadline expired_in_queue".into());
                                continue;
                            }
                        }
                    }

                    let response = match &request {
                        Request::Step { .. } | Request::Decide { .. } | Request::Event { .. } => {
                            let level = degrader.level();
                            let payload = match &request {
                                Request::Step { .. } => format!("STEP {}", level.code()),
                                Request::Decide { .. } => format!("DECIDE {}", level.code()),
                                Request::Event { text, .. } => format!("EVENT {text}"),
                                _ => unreachable!("outer arm admits only mutating requests"),
                            };
                            match journal.append(&payload) {
                                Err(e) => format!("ERR 500 journal {e}"),
                                Ok(seq) => {
                                    journal_records.inc();
                                    if kill_points.fire("serve.post_journal.crash") {
                                        // Crash between the write-ahead record
                                        // and its execution: replay owns it.
                                        break 'serve;
                                    }
                                    let t0 = Instant::now();
                                    let outcome = core.apply_payload(&payload);
                                    let took = t0.elapsed();
                                    s.cost.record(took);
                                    request_hist.observe(took.as_secs_f64());
                                    let overloaded = took > step_budget
                                        || s.depth.load(Ordering::SeqCst)
                                            >= (s.capacity * 3).div_ceil(4);
                                    degrader.observe(overloaded, core.healthy());
                                    match outcome {
                                        Ok(Applied::Step(o)) => {
                                            steps.inc();
                                            format!(
                                                "OK step {} {} {}",
                                                o.now_minutes,
                                                o.trips,
                                                level.code()
                                            )
                                        }
                                        Ok(Applied::Decide(o)) => {
                                            decides.inc();
                                            format!(
                                                "OK decide {} {} {}",
                                                o.decisions,
                                                o.moved,
                                                level.code()
                                            )
                                        }
                                        Ok(Applied::Event) => format!("OK event {seq}"),
                                        Err(e) => format!("ERR 400 {e}"),
                                    }
                                }
                            }
                        }
                        Request::Digest => {
                            format!("OK digest {:016x} {}", core.digest(), core.now_minutes())
                        }
                        Request::Health => format!(
                            "OK health {} {} {}",
                            degrader.level().code(),
                            core.applied_seq(),
                            s.depth.load(Ordering::SeqCst)
                        ),
                        Request::Ckpt => match checkpoint(&mut vault, &core, &kill_points) {
                            CkptOutcome::Written(seq) => {
                                checkpoints.inc();
                                last_ckpt_at = core.applied_seq();
                                format!("OK ckpt {seq}")
                            }
                            CkptOutcome::Crashed => break 'serve,
                            CkptOutcome::Failed(e) => format!("ERR 500 checkpoint {e}"),
                        },
                        Request::Kill => {
                            // A hard crash: no reply, no checkpoint, no drain.
                            break 'serve;
                        }
                        Request::Quit => continue, // handled connection-side
                    };
                    let _ = reply.send(response);

                    if core.applied_seq().saturating_sub(last_ckpt_at) >= checkpoint_every {
                        match checkpoint(&mut vault, &core, &kill_points) {
                            CkptOutcome::Written(_) => {
                                checkpoints.inc();
                                last_ckpt_at = core.applied_seq();
                            }
                            CkptOutcome::Crashed => break 'serve,
                            CkptOutcome::Failed(_) => {}
                        }
                    }
                }
                s.worker_dead.store(true, Ordering::SeqCst);
            })
            .expect("spawn dispatch worker");

        // -- acceptor ----------------------------------------------------
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("fairmove-serve-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if acceptor_shared.stop.load(Ordering::SeqCst)
                        || acceptor_shared.worker_dead.load(Ordering::SeqCst)
                    {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let conn_shared = Arc::clone(&acceptor_shared);
                    let _ = std::thread::Builder::new()
                        .name("fairmove-serve-conn".into())
                        .spawn(move || {
                            let _ = handle_connection(stream, &conn_shared);
                        });
                }
            })
            .expect("spawn dispatch acceptor");

        Ok(DispatchServer {
            addr,
            metrics,
            shared,
            recovery,
            worker: Some(worker),
            acceptor: Some(acceptor),
        })
    }

    /// The dispatch listener address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The `/metrics` listener address, when enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics.as_ref().map(|m| m.addr())
    }

    /// What warm restart found at startup.
    pub fn recovery(&self) -> RecoveryInfo {
        self.recovery
    }

    /// Whether the worker has crashed (`KILL` or an armed kill point).
    pub fn worker_dead(&self) -> bool {
        self.shared.worker_dead.load(Ordering::SeqCst)
    }

    /// Blocks until the worker thread exits (crash or shutdown), with a
    /// bound. Returns whether it exited in time.
    pub fn wait_worker_exit(&mut self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !self.worker_dead() {
            if Instant::now() >= deadline {
                return false;
            }
            if self.worker.as_ref().is_none_or(|w| w.is_finished()) {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
        true
    }

    /// Graceful shutdown: stop accepting, write a final checkpoint, join
    /// every thread.
    pub fn shutdown(mut self) {
        let _ = self.shared.queue.send(Job::Shutdown);
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the acceptor out of `accept()`.
        let _ = TcpStream::connect(self.addr);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(m) = self.metrics.take() {
            m.shutdown();
        }
    }
}

impl Drop for DispatchServer {
    fn drop(&mut self) {
        if self.worker.is_some() || self.acceptor.is_some() {
            let _ = self.shared.queue.send(Job::Shutdown);
            self.stop_threads();
        }
    }
}

enum CkptOutcome {
    Written(u64),
    /// An armed kill point tore the write and "crashed" the worker.
    Crashed,
    Failed(io::Error),
}

fn checkpoint(vault: &mut CheckpointVault, core: &DispatchCore, kp: &KillPoints) -> CkptOutcome {
    let payload = core.checkpoint();
    if kp.fire("serve.ckpt.torn") {
        // Simulate power loss mid-write: leave a *torn* file at the next
        // sequence (bypassing the atomic tmp+rename discipline on purpose)
        // and die. Warm restart must skip it and fall back.
        let seq = match vault.persist(&payload) {
            Ok(seq) => seq,
            Err(_) => return CkptOutcome::Crashed,
        };
        let path = vault.dir().join(format!("ckpt-{seq:08}.bin"));
        let torn_len = (payload.len() / 2).max(1) as u64;
        if let Ok(f) = std::fs::OpenOptions::new().write(true).open(&path) {
            let _ = f.set_len(torn_len);
            let _ = f.sync_all();
        }
        return CkptOutcome::Crashed;
    }
    match vault.persist(&payload) {
        Ok(seq) => CkptOutcome::Written(seq),
        Err(e) => CkptOutcome::Failed(e),
    }
}

/// Reads request lines off one client connection; see the module docs for
/// the shedding and slow-loris rules.
fn handle_connection(mut stream: TcpStream, s: &Arc<Shared>) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    let mut line_started: Option<Instant> = None;
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client closed
            Ok(_) => {
                line_started = None;
                let trimmed = line.trim().to_string();
                line.clear();
                if trimmed.is_empty() {
                    continue;
                }
                match serve_line(&trimmed, &mut stream, s)? {
                    Flow::Continue => {}
                    Flow::Close => return Ok(()),
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // `read_line` may have buffered a partial line before the
                // timeout; a partial line that lingers is a slow-loris.
                if !line.is_empty() {
                    let started = *line_started.get_or_insert_with(Instant::now);
                    if started.elapsed() >= LINE_DEADLINE {
                        let _ = stream.write_all(b"ERR 408 line_too_slow\n");
                        return Ok(());
                    }
                } else {
                    line_started = None;
                }
                if line.len() > MAX_LINE_BYTES {
                    let _ = stream.write_all(b"ERR 400 line_too_long\n");
                    return Ok(());
                }
            }
            Err(_) => return Ok(()),
        }
        if line.len() > MAX_LINE_BYTES {
            let _ = stream.write_all(b"ERR 400 line_too_long\n");
            return Ok(());
        }
    }
}

enum Flow {
    Continue,
    Close,
}

fn serve_line(trimmed: &str, stream: &mut TcpStream, s: &Arc<Shared>) -> io::Result<Flow> {
    let request = match parse_request(trimmed) {
        Ok(r) => r,
        Err(why) => {
            s.telemetry.counter("serve.bad_requests").inc();
            stream.write_all(format!("ERR 400 {why}\n").as_bytes())?;
            return Ok(Flow::Continue);
        }
    };
    if matches!(request, Request::Quit) {
        return Ok(Flow::Close);
    }
    let deadline = match &request {
        Request::Step { deadline_ms } | Request::Decide { deadline_ms } => {
            deadline_ms.map(|ms| Deadline::after(Duration::from_millis(ms)))
        }
        _ => None,
    };
    // Early rejection: if the cost model already knows the budget cannot be
    // met, don't waste a queue slot on a doomed request.
    if let Some(d) = &deadline {
        if !s.cost.admits(d.remaining()) {
            s.telemetry.counter("serve.shed_predicted").inc();
            stream.write_all(b"ERR 503 deadline predicted_over_budget\n")?;
            return Ok(Flow::Continue);
        }
    }
    let killing = matches!(request, Request::Kill);
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job::Client {
        request,
        deadline,
        reply: reply_tx,
    };
    s.depth.fetch_add(1, Ordering::SeqCst);
    match s.queue.try_send(job) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            s.depth.fetch_sub(1, Ordering::SeqCst);
            s.telemetry.counter("serve.shed_queue").inc();
            stream.write_all(b"ERR 429 shed queue_full\n")?;
            return Ok(Flow::Continue);
        }
        Err(TrySendError::Disconnected(_)) => {
            s.depth.fetch_sub(1, Ordering::SeqCst);
            stream.write_all(b"ERR 500 worker_gone\n")?;
            return Ok(Flow::Close);
        }
    }
    if killing {
        // The worker dies without replying; nothing to wait for.
        return Ok(Flow::Close);
    }
    // Wait for the worker's answer, bounded: the deadline plus slack when
    // one was given, a generous liveness bound otherwise.
    let wait = deadline
        .map(|d| d.remaining() + Duration::from_secs(5))
        .unwrap_or(Duration::from_secs(60));
    match reply_rx.recv_timeout(wait) {
        Ok(response) => {
            stream.write_all(response.as_bytes())?;
            stream.write_all(b"\n")?;
            Ok(Flow::Continue)
        }
        Err(_) => {
            // Worker died (crash chaos) or is wedged past any deadline.
            let _ = stream.write_all(b"ERR 500 worker_gone\n");
            Ok(Flow::Close)
        }
    }
}

/// A tiny blocking protocol client (tests, chaos harness, load generator).
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a dispatch server.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Sends one request line and reads one response line.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// Sends a request without waiting for any response (for `KILL`).
    pub fn fire_and_forget(&mut self, line: &str) -> io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")
    }
}
