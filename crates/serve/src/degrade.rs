//! The service-level ladder.
//!
//! Under sustained overload or an unhealthy learned policy, the server
//! degrades *how much work each decision costs* rather than failing
//! requests: full CMA2C inference (wrapped in the simulator's
//! [`fairmove_sim::ResilientPolicy`] sanitizer) steps down to the resilient
//! fallback (stay-put, the same safe default the sanitizer itself uses),
//! and finally to the stateless greedy oracle. Recovery climbs back one
//! rung at a time after a sustained calm streak — hysteresis, so a noisy
//! boundary doesn't flap the ladder every slot.
//!
//! The ladder decides *future* requests only. Replay determinism is owned
//! by the journal: each executed request records the level it actually ran
//! at, and warm restart replays that recorded level, never re-running the
//! (timing-dependent) ladder.

use fairmove_telemetry::{Counter, Gauge, Telemetry};

/// The rungs, best first. Journal encoding: `F`/`S`/`G`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ServiceLevel {
    /// Full CMA2C inference behind the resilient sanitizer.
    Full,
    /// The resilient fallback itself (stay-put), skipping inference.
    Fallback,
    /// Stateless greedy oracle: cheapest defensible decision.
    Greedy,
}

impl ServiceLevel {
    /// One-letter journal encoding.
    pub fn code(self) -> char {
        match self {
            ServiceLevel::Full => 'F',
            ServiceLevel::Fallback => 'S',
            ServiceLevel::Greedy => 'G',
        }
    }

    /// Parses [`ServiceLevel::code`].
    pub fn from_code(c: char) -> Option<Self> {
        match c {
            'F' => Some(ServiceLevel::Full),
            'S' => Some(ServiceLevel::Fallback),
            'G' => Some(ServiceLevel::Greedy),
            _ => None,
        }
    }

    fn worse(self) -> Self {
        match self {
            ServiceLevel::Full => ServiceLevel::Fallback,
            _ => ServiceLevel::Greedy,
        }
    }

    fn better(self) -> Self {
        match self {
            ServiceLevel::Greedy => ServiceLevel::Fallback,
            _ => ServiceLevel::Full,
        }
    }

    fn gauge_value(self) -> f64 {
        match self {
            ServiceLevel::Full => 0.0,
            ServiceLevel::Fallback => 1.0,
            ServiceLevel::Greedy => 2.0,
        }
    }
}

/// Hysteretic ladder controller. See the module docs.
pub struct Degrader {
    level: ServiceLevel,
    strikes: u32,
    calm: u32,
    demote_after: u32,
    promote_after: u32,
    demotions: Counter,
    promotions: Counter,
    level_gauge: Gauge,
}

impl Degrader {
    /// A ladder starting at [`ServiceLevel::Full`], demoting after
    /// `demote_after` consecutive overload ticks and promoting after
    /// `promote_after` consecutive calm ticks (both min 1).
    pub fn new(telemetry: &Telemetry, demote_after: u32, promote_after: u32) -> Self {
        let level_gauge = telemetry.gauge("serve.ladder_level");
        level_gauge.set(ServiceLevel::Full.gauge_value());
        Degrader {
            level: ServiceLevel::Full,
            strikes: 0,
            calm: 0,
            demote_after: demote_after.max(1),
            promote_after: promote_after.max(1),
            demotions: telemetry.counter("serve.demotions"),
            promotions: telemetry.counter("serve.promotions"),
            level_gauge,
        }
    }

    /// The level future requests should run at.
    pub fn level(&self) -> ServiceLevel {
        self.level
    }

    /// Feeds one tick of evidence. `overloaded` = queue near capacity or
    /// the last request blew its budget; `healthy` = the learned policy's
    /// parameters are finite. An unhealthy policy forces the ladder off
    /// [`ServiceLevel::Full`] immediately — no amount of calm makes running
    /// a diverged network acceptable.
    pub fn observe(&mut self, overloaded: bool, healthy: bool) -> ServiceLevel {
        if !healthy && self.level == ServiceLevel::Full {
            self.set_level(self.level.worse());
            self.strikes = 0;
            self.calm = 0;
            return self.level;
        }
        if overloaded {
            self.calm = 0;
            self.strikes += 1;
            if self.strikes >= self.demote_after && self.level != ServiceLevel::Greedy {
                self.set_level(self.level.worse());
                self.strikes = 0;
            }
        } else {
            self.strikes = 0;
            self.calm += 1;
            let promotable = self.level.better() != ServiceLevel::Full || healthy;
            if self.calm >= self.promote_after && self.level != ServiceLevel::Full && promotable {
                let up = self.level.better();
                self.set_level(up);
                self.calm = 0;
            }
        }
        self.level
    }

    fn set_level(&mut self, to: ServiceLevel) {
        if to > self.level {
            self.demotions.inc();
        } else {
            self.promotions.inc();
        }
        self.level = to;
        self.level_gauge.set(to.gauge_value());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn degrader(tel: &Telemetry) -> Degrader {
        Degrader::new(tel, 3, 4)
    }

    #[test]
    fn codes_round_trip() {
        for l in [
            ServiceLevel::Full,
            ServiceLevel::Fallback,
            ServiceLevel::Greedy,
        ] {
            assert_eq!(ServiceLevel::from_code(l.code()), Some(l));
        }
        assert_eq!(ServiceLevel::from_code('x'), None);
    }

    #[test]
    fn demotes_only_after_sustained_overload() {
        let tel = Telemetry::enabled();
        let mut d = degrader(&tel);
        assert_eq!(d.observe(true, true), ServiceLevel::Full);
        assert_eq!(d.observe(true, true), ServiceLevel::Full);
        // A calm tick resets the strike count: no demotion from flapping.
        assert_eq!(d.observe(false, true), ServiceLevel::Full);
        assert_eq!(d.observe(true, true), ServiceLevel::Full);
        assert_eq!(d.observe(true, true), ServiceLevel::Full);
        assert_eq!(d.observe(true, true), ServiceLevel::Fallback);
        // Sustained overload keeps walking down.
        for _ in 0..3 {
            d.observe(true, true);
        }
        assert_eq!(d.level(), ServiceLevel::Greedy);
        // The bottom rung holds.
        for _ in 0..10 {
            assert_eq!(d.observe(true, true), ServiceLevel::Greedy);
        }
        assert_eq!(tel.snapshot().counter("serve.demotions"), Some(2));
    }

    #[test]
    fn promotes_one_rung_per_calm_streak() {
        let tel = Telemetry::enabled();
        let mut d = degrader(&tel);
        for _ in 0..6 {
            d.observe(true, true);
        }
        assert_eq!(d.level(), ServiceLevel::Greedy);
        for i in 0..4 {
            assert_eq!(
                d.observe(false, true),
                if i < 3 {
                    ServiceLevel::Greedy
                } else {
                    ServiceLevel::Fallback
                },
                "tick {i}"
            );
        }
        for _ in 0..4 {
            d.observe(false, true);
        }
        assert_eq!(d.level(), ServiceLevel::Full);
        assert_eq!(tel.snapshot().counter("serve.promotions"), Some(2));
        assert_eq!(tel.snapshot().gauge("serve.ladder_level"), Some(0.0));
    }

    #[test]
    fn unhealthy_policy_leaves_full_immediately_and_blocks_reentry() {
        let tel = Telemetry::enabled();
        let mut d = degrader(&tel);
        assert_eq!(d.observe(false, false), ServiceLevel::Fallback);
        // Calm but still unhealthy: never climbs back to Full.
        for _ in 0..20 {
            assert_eq!(d.observe(false, false), ServiceLevel::Fallback);
        }
        // Health restored: the calm streak promotes again.
        for _ in 0..4 {
            d.observe(false, true);
        }
        assert_eq!(d.level(), ServiceLevel::Full);
    }
}
