//! Deterministic retry backoff.
//!
//! Load generators and chaos tests retry against a server that sheds load
//! or is mid-restart. Retrying *well* means exponential backoff with
//! jitter (so a fleet of clients doesn't re-dogpile in lockstep), a bounded
//! attempt count, and — because every request here carries a deadline —
//! giving up early rather than sleeping past the point where a success
//! could still be useful.
//!
//! The jitter is seeded: schedule is a pure function of `(seed, attempt)`,
//! via [`fairmove_faults::splitmix64`], so tests can assert the exact
//! delays and replays don't wander.

use fairmove_faults::splitmix64;
use std::time::Duration;

/// A seeded, bounded, jittered exponential-backoff schedule.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    max_attempts: u32,
    /// Fraction of each delay randomized away, in `[0, 1]`: the delay for
    /// attempt *k* is `exp_k * (1 - jitter * u)` with `u ∈ [0, 1)`.
    jitter: f64,
    seed: u64,
    attempt: u32,
}

impl Backoff {
    /// A schedule starting at `base`, doubling per attempt, capped at
    /// `cap`, with at most `max_attempts` retries and 50% jitter.
    pub fn new(seed: u64, base: Duration, cap: Duration, max_attempts: u32) -> Self {
        Backoff {
            base,
            cap,
            max_attempts,
            jitter: 0.5,
            seed,
            attempt: 0,
        }
    }

    /// Overrides the jitter fraction (clamped to `[0, 1]`; 0 = pure
    /// exponential).
    #[must_use]
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// Retries consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The delay to sleep before the next retry, or `None` once the attempt
    /// budget is exhausted. Deterministic in `(seed, attempt)`.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.max_attempts {
            return None;
        }
        // base · 2^attempt, saturating well before u64 overflow, then cap.
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(self.attempt).unwrap_or(u32::MAX))
            .min(self.cap);
        let u = splitmix64(self.seed ^ u64::from(self.attempt).wrapping_mul(0x9E37)) as f64
            / (u64::MAX as f64);
        let scaled = exp.as_secs_f64() * (1.0 - self.jitter * u);
        self.attempt += 1;
        Some(Duration::from_secs_f64(scaled))
    }

    /// Deadline-aware variant: additionally gives up (`None`) when the next
    /// delay would sleep past `remaining` — the retry could only complete
    /// after the caller's deadline, so it is never taken.
    pub fn next_delay_within(&mut self, remaining: Duration) -> Option<Duration> {
        let before = self.attempt;
        let delay = self.next_delay()?;
        if delay >= remaining {
            // Un-consume: the caller may retry later with a fresh deadline.
            self.attempt = before;
            return None;
        }
        Some(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(seed: u64) -> Vec<Duration> {
        let mut b = Backoff::new(
            seed,
            Duration::from_millis(10),
            Duration::from_millis(500),
            6,
        );
        std::iter::from_fn(|| b.next_delay()).collect()
    }

    #[test]
    fn same_seed_same_schedule_different_seed_different_jitter() {
        assert_eq!(schedule(42), schedule(42));
        assert_ne!(schedule(42), schedule(43));
    }

    #[test]
    fn delays_grow_exponentially_within_the_cap() {
        // Without jitter the schedule is exactly base · 2^k, capped.
        let mut b = Backoff::new(7, Duration::from_millis(10), Duration::from_millis(100), 8)
            .with_jitter(0.0);
        let delays: Vec<u64> = std::iter::from_fn(|| b.next_delay())
            .map(|d| d.as_millis() as u64)
            .collect();
        assert_eq!(delays, vec![10, 20, 40, 80, 100, 100, 100, 100]);
    }

    #[test]
    fn jitter_never_exceeds_the_undithered_delay() {
        let mut b = Backoff::new(99, Duration::from_millis(10), Duration::from_secs(1), 20);
        let mut exp = Duration::from_millis(10);
        while let Some(d) = b.next_delay() {
            assert!(d <= exp, "jittered {d:?} above expected {exp:?}");
            assert!(
                d >= exp.mul_f64(0.5),
                "jittered {d:?} below half of {exp:?}"
            );
            exp = (exp * 2).min(Duration::from_secs(1));
        }
    }

    #[test]
    fn attempt_budget_is_exact() {
        let mut b = Backoff::new(1, Duration::from_millis(1), Duration::from_secs(1), 3);
        assert!(b.next_delay().is_some());
        assert!(b.next_delay().is_some());
        assert!(b.next_delay().is_some());
        assert!(b.next_delay().is_none());
        assert_eq!(b.attempts(), 3);
    }

    #[test]
    fn deadline_awareness_refuses_sleeps_past_the_deadline() {
        let mut b = Backoff::new(5, Duration::from_millis(100), Duration::from_secs(10), 32)
            .with_jitter(0.0);
        // Plenty of budget: the first delays are taken.
        assert_eq!(
            b.next_delay_within(Duration::from_secs(1)),
            Some(Duration::from_millis(100))
        );
        assert_eq!(
            b.next_delay_within(Duration::from_secs(1)),
            Some(Duration::from_millis(200))
        );
        // The next delay (400 ms) would overshoot a 300 ms budget: give up
        // without consuming the attempt.
        let before = b.attempts();
        assert_eq!(b.next_delay_within(Duration::from_millis(300)), None);
        assert_eq!(b.attempts(), before);
        // A zero budget can never admit a retry.
        assert_eq!(b.next_delay_within(Duration::ZERO), None);
    }
}
