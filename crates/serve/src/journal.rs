//! Write-ahead event journal.
//!
//! Every state-mutating request is appended (and fsynced) here *before* it
//! executes, as one text record per line:
//!
//! ```text
//! FMJ1 <seq> <crc32-hex> <payload>
//! ```
//!
//! The CRC covers the payload bytes. Replay walks the file from the top
//! and stops at the first record that fails to parse or verify — a crash
//! mid-append can only tear the *tail*, so everything before the torn
//! record is trusted and the torn bytes are discarded (and truncated away
//! on reopen, so the next append never splices onto garbage).

use fairmove_rl::store::crc32;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

const TAG: &str = "FMJ1";

/// One replayed journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Monotonic sequence number (0-based).
    pub seq: u64,
    /// The journaled command text.
    pub payload: String,
}

/// Outcome of scanning a journal file.
#[derive(Debug)]
pub struct Replay {
    /// Valid records, in order.
    pub records: Vec<Record>,
    /// Bytes of torn/garbage tail discarded (0 on a clean file).
    pub torn_bytes: u64,
    /// Offset of the first byte past the last valid record.
    valid_len: u64,
}

/// Parses journal `bytes`, stopping at the first invalid record.
pub fn scan(bytes: &[u8]) -> Replay {
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut expected_seq = 0u64;
    while offset < bytes.len() {
        let Some(rel_end) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            break; // unterminated tail
        };
        let line = &bytes[offset..offset + rel_end];
        let Some(record) = parse_line(line, expected_seq) else {
            break;
        };
        records.push(record);
        expected_seq += 1;
        offset += rel_end + 1;
    }
    Replay {
        records,
        torn_bytes: (bytes.len() - offset) as u64,
        valid_len: offset as u64,
    }
}

fn parse_line(line: &[u8], expected_seq: u64) -> Option<Record> {
    let line = std::str::from_utf8(line).ok()?;
    let mut it = line.splitn(4, ' ');
    if it.next() != Some(TAG) {
        return None;
    }
    let seq: u64 = it.next()?.parse().ok()?;
    let crc = u32::from_str_radix(it.next()?, 16).ok()?;
    let payload = it.next()?;
    // A record with the wrong sequence number means the file was spliced
    // or rewritten — nothing after it is trustworthy.
    if seq != expected_seq || crc32(payload.as_bytes()) != crc {
        return None;
    }
    Some(Record {
        seq,
        payload: payload.to_string(),
    })
}

/// An open journal: replayed once at open, append-only afterwards.
#[derive(Debug)]
pub struct Journal {
    file: File,
    next_seq: u64,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, scanning existing
    /// records. Any torn tail is truncated off before appends resume.
    pub fn open(path: &Path) -> io::Result<(Journal, Replay)> {
        // Existing records are the whole point of reopening: never truncate
        // here (the only truncation is the torn-tail trim below).
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let replay = scan(&bytes);
        if replay.torn_bytes > 0 {
            file.set_len(replay.valid_len)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(replay.valid_len))?;
        let next_seq = replay.records.len() as u64;
        Ok((Journal { file, next_seq }, replay))
    }

    /// The sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends `payload` (must be newline-free) as the next record and
    /// fsyncs before returning, so an acknowledged command survives a crash.
    pub fn append(&mut self, payload: &str) -> io::Result<u64> {
        debug_assert!(!payload.contains('\n'), "journal payloads are one line");
        let seq = self.next_seq;
        let line = format!("{TAG} {seq} {:08x} {payload}\n", crc32(payload.as_bytes()));
        self.file.write_all(line.as_bytes())?;
        self.file.sync_all()?;
        self.next_seq += 1;
        Ok(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("fairmove-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_then_reopen_replays_everything() {
        let path = tmp("roundtrip");
        {
            let (mut j, replay) = Journal::open(&path).unwrap();
            assert!(replay.records.is_empty());
            assert_eq!(j.append("STEP F").unwrap(), 0);
            assert_eq!(j.append("EVENT surge 3 1.5 10 20").unwrap(), 1);
            assert_eq!(j.append("STEP G").unwrap(), 2);
        }
        let (j, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(
            replay
                .records
                .iter()
                .map(|r| r.payload.as_str())
                .collect::<Vec<_>>(),
            vec!["STEP F", "EVENT surge 3 1.5 10 20", "STEP G"]
        );
        assert_eq!(j.next_seq(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_at_every_byte_keeps_the_valid_prefix() {
        let path = tmp("torn");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append("STEP F").unwrap();
            j.append("STEP S").unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let first_len = full.iter().position(|&b| b == b'\n').unwrap() + 1;
        for cut in 0..full.len() {
            let replay = scan(&full[..cut]);
            let want = if cut >= full.len() {
                2
            } else if cut >= first_len + 1 {
                // Anywhere inside the second record (even one byte in) the
                // tail is torn; the first record survives untouched.
                1
            } else if cut == first_len {
                1
            } else {
                0
            };
            assert_eq!(replay.records.len(), want, "cut at {cut}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_truncates_garbage_and_appends_continue() {
        let path = tmp("truncate");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append("STEP F").unwrap();
        }
        // Simulate a crash mid-append: half a record, no newline.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"FMJ1 1 deadbeef STE").unwrap();
        }
        let (mut j, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.torn_bytes > 0);
        assert_eq!(j.append("STEP S").unwrap(), 1);
        // The file is now clean: a third open sees both records, no tears.
        let (_, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.torn_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bitflips_and_spliced_sequences_stop_the_scan() {
        let path = tmp("bitflip");
        {
            let (mut j, _) = Journal::open(&path).unwrap();
            j.append("STEP F").unwrap();
            j.append("STEP S").unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let first_len = full.iter().position(|&b| b == b'\n').unwrap() + 1;
        // Flip one payload byte of the second record: CRC catches it.
        let mut corrupt = full.clone();
        *corrupt.last_mut().unwrap() = b'\n'; // keep the newline
        let flip_at = full.len() - 2;
        corrupt[flip_at] ^= 0x01;
        assert_eq!(scan(&corrupt).records.len(), 1);
        // Duplicate the first record after itself: sequence check catches it.
        let mut spliced = full[..first_len].to_vec();
        spliced.extend_from_slice(&full[..first_len]);
        assert_eq!(scan(&spliced).records.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
