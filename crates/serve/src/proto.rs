//! The line-oriented dispatch protocol.
//!
//! One request per line, one response line back (except `QUIT`/`KILL`).
//!
//! ```text
//! STEP [deadline_ms]        advance one slot           -> OK step <slot> <matches>
//! DECIDE [deadline_ms]      advisory decisions         -> OK decide <n> <moved>
//! EVENT surge <region> <factor> <from> <to>
//! EVENT blackout <region> <from> <to>
//! EVENT outage <station> <from> <to>
//! EVENT breakdown <taxi> <from> <to>   inject a fault  -> OK event <seq>
//! DIGEST                    state digest               -> OK digest <hex> <slot>
//! HEALTH                    liveness + ladder          -> OK health <level> <seq> <depth>
//! CKPT                      force a checkpoint         -> OK ckpt <seq>
//! QUIT                      close this connection
//! KILL                      crash the server (chaos)
//! ```
//!
//! Errors: `ERR 400 <why>` (malformed), `ERR 429 shed <why>` (queue full),
//! `ERR 503 deadline <why>` (budget can't be met), `ERR 500 <why>`.

use fairmove_faults::{FaultSpec, SlotWindow};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Advance the simulation one slot. Optional deadline budget in ms.
    Step { deadline_ms: Option<u64> },
    /// Compute (but don't apply) displacement decisions for the current
    /// slot. Optional deadline budget in ms.
    Decide { deadline_ms: Option<u64> },
    /// Inject a fault. Carries the parsed spec and its canonical journal
    /// payload text.
    Event { spec: FaultSpec, text: String },
    /// Request the state digest.
    Digest,
    /// Liveness, ladder level, journal position, queue depth.
    Health,
    /// Force a checkpoint now.
    Ckpt,
    /// Close the connection gracefully.
    Quit,
    /// Hard-crash the worker without checkpointing (chaos testing).
    Kill,
}

impl Request {
    /// Whether the request mutates dispatch state (and thus is journaled).
    pub fn mutates(&self) -> bool {
        matches!(
            self,
            Request::Step { .. } | Request::Decide { .. } | Request::Event { .. }
        )
    }
}

/// Parses one request line. Errors are human-readable `ERR 400` reasons.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut it = line.split_whitespace();
    let verb = it.next().ok_or("empty request")?;
    let req = match verb {
        "STEP" | "DECIDE" => {
            let deadline_ms = match it.next() {
                None => None,
                Some(ms) => Some(
                    ms.parse::<u64>()
                        .map_err(|_| format!("bad deadline {ms:?}"))?,
                ),
            };
            if verb == "STEP" {
                Request::Step { deadline_ms }
            } else {
                Request::Decide { deadline_ms }
            }
        }
        "EVENT" => {
            let rest: Vec<&str> = it.by_ref().collect();
            let (spec, text) = parse_event(&rest)?;
            return finish(Request::Event { spec, text }, it);
        }
        "DIGEST" => Request::Digest,
        "HEALTH" => Request::Health,
        "CKPT" => Request::Ckpt,
        "QUIT" => Request::Quit,
        "KILL" => Request::Kill,
        other => return Err(format!("unknown verb {other:?}")),
    };
    finish(req, it)
}

fn finish<'a>(req: Request, mut rest: impl Iterator<Item = &'a str>) -> Result<Request, String> {
    match rest.next() {
        None => Ok(req),
        Some(extra) => Err(format!("unexpected trailing {extra:?}")),
    }
}

/// Parses the `EVENT` argument vector into a fault spec; also reused to
/// replay journaled `EVENT` payloads.
pub fn parse_event(args: &[&str]) -> Result<(FaultSpec, String), String> {
    fn num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
        s.parse().map_err(|_| format!("bad {what} {s:?}"))
    }
    let window = |from: &str, to: &str| -> Result<SlotWindow, String> {
        let start: u32 = num(from, "window start")?;
        let end: u32 = num(to, "window end")?;
        if start > end {
            return Err(format!("inverted window [{start}, {end})"));
        }
        Ok(SlotWindow::new(start, end))
    };
    let spec = match args {
        ["surge", region, factor, from, to] => FaultSpec::DemandSurge {
            region: num(region, "region")?,
            factor: num::<f64>(factor, "factor")?,
            window: window(from, to)?,
        },
        ["blackout", region, from, to] => FaultSpec::DemandBlackout {
            region: num(region, "region")?,
            window: window(from, to)?,
        },
        ["outage", station, from, to] => FaultSpec::StationOutage {
            station: num(station, "station")?,
            window: window(from, to)?,
        },
        ["breakdown", taxi, from, to] => FaultSpec::TaxiBreakdown {
            taxi: num(taxi, "taxi")?,
            window: window(from, to)?,
        },
        _ => return Err(format!("bad event {args:?}")),
    };
    Ok((spec, args.join(" ")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_core_verbs() {
        assert_eq!(
            parse_request("STEP"),
            Ok(Request::Step { deadline_ms: None })
        );
        assert_eq!(
            parse_request("STEP 50"),
            Ok(Request::Step {
                deadline_ms: Some(50)
            })
        );
        assert_eq!(
            parse_request("DECIDE 10"),
            Ok(Request::Decide {
                deadline_ms: Some(10)
            })
        );
        assert_eq!(parse_request("DIGEST"), Ok(Request::Digest));
        assert_eq!(parse_request("HEALTH"), Ok(Request::Health));
        assert_eq!(parse_request("CKPT"), Ok(Request::Ckpt));
        assert_eq!(parse_request("QUIT"), Ok(Request::Quit));
        assert_eq!(parse_request("KILL"), Ok(Request::Kill));
    }

    #[test]
    fn parses_events_with_canonical_payloads() {
        let Ok(Request::Event { spec, text }) = parse_request("EVENT surge 3 1.5 10 20") else {
            panic!("surge must parse");
        };
        assert_eq!(text, "surge 3 1.5 10 20");
        assert_eq!(
            spec,
            FaultSpec::DemandSurge {
                region: 3,
                factor: 1.5,
                window: SlotWindow::new(10, 20)
            }
        );
        assert!(parse_request("EVENT outage 2 5 9").is_ok());
        assert!(parse_request("EVENT blackout 1 5 9").is_ok());
        assert!(parse_request("EVENT breakdown 17 0 3").is_ok());
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "",
            "FROB",
            "STEP fast",
            "STEP 10 20",
            "EVENT surge 3 1.5 10",
            "EVENT surge 3 1.5 20 10",
            "EVENT quake 3 0 1",
            "DIGEST now",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn mutation_classification_drives_journaling() {
        assert!(parse_request("STEP").unwrap().mutates());
        assert!(parse_request("DECIDE").unwrap().mutates());
        assert!(parse_request("EVENT outage 0 1 2").unwrap().mutates());
        assert!(!parse_request("DIGEST").unwrap().mutates());
        assert!(!parse_request("HEALTH").unwrap().mutates());
        assert!(!parse_request("CKPT").unwrap().mutates());
    }
}
