//! The dispatch core: simulator + policy ladder + crash-safe snapshots.
//!
//! A [`DispatchCore`] owns everything the worker thread mutates: the
//! environment, the frozen CMA2C policy (still stochastic — Algorithm 1
//! samples from π at execution time), and the fault specs injected so far.
//! Every mutation goes through [`DispatchCore::apply_payload`] with the
//! *journal text* of the command, so live execution and warm-restart replay
//! run literally the same code path — the foundation of the bit-identical
//! recovery guarantee.
//!
//! Checkpoints capture the full mutable state: environment image
//! ([`Environment::save_state`]), policy parameters, policy RNG state (a
//! frozen policy still consumes randomness when sampling actions), and the
//! event list (the *plan* of future fault windows is an input, not
//! environment state). The payload is versioned and fingerprinted against
//! the [`SimConfig`], so a server restarted with a different world politely
//! refuses the snapshot instead of replaying nonsense.

use crate::degrade::ServiceLevel;
use crate::proto::parse_event;
use fairmove_agents::{Cma2cConfig, Cma2cPolicy, OraclePolicy};
use fairmove_faults::{FaultPlan, FaultSpec};
use fairmove_sim::{
    config_fingerprint, Action, DisplacementPolicy, Environment, ResilientPolicy, SimConfig,
    StayPolicy,
};

const MAGIC: &[u8; 8] = b"FMSRVCK1";
const VERSION: u32 = 1;

/// FNV-1a 64-bit, the digest clients use to compare two servers' states.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Result of one applied `STEP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// Simulation clock after the step, in minutes.
    pub now_minutes: u32,
    /// Completed trips so far (whole run).
    pub trips: u64,
}

/// Result of one applied `DECIDE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecideOutcome {
    /// Vacant taxis consulted.
    pub decisions: u64,
    /// Decisions that displace (anything but stay-put).
    pub moved: u64,
}

/// See the module docs.
pub struct DispatchCore {
    config: SimConfig,
    alpha: f64,
    env: Environment,
    policy: Cma2cPolicy,
    greedy: OraclePolicy,
    /// Canonical `EVENT` payload texts applied so far, in order.
    events: Vec<String>,
    /// Journal records applied (= the next sequence number expected).
    applied_seq: u64,
}

impl DispatchCore {
    /// A fresh core at slot zero with a frozen (randomly initialized unless
    /// later restored) CMA2C policy.
    pub fn new(config: SimConfig, alpha: f64) -> Self {
        let env = Environment::new(config.clone());
        let mut policy = Cma2cPolicy::new(
            env.city(),
            Cma2cConfig {
                alpha,
                seed: config.seed,
                ..Cma2cConfig::default()
            },
        );
        policy.freeze();
        DispatchCore {
            config,
            alpha,
            env,
            policy,
            greedy: OraclePolicy::new(),
            events: Vec::new(),
            applied_seq: 0,
        }
    }

    /// Journal records applied so far.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Switches the frozen policy between exact-f64 and int8-quantized
    /// serving. Quantization is a *serving mode*, not replayable state: it is
    /// derived deterministically from the frozen parameters, so checkpoints
    /// stay at format [`VERSION`] and a restored core reproduces the original
    /// decision stream bit-for-bit once the embedding server re-applies its
    /// configured mode (before journal replay).
    pub fn set_quantized_serving(&mut self, on: bool) {
        self.policy.set_quantized_serving(on);
    }

    /// Whether decisions currently run through the int8 serving path.
    pub fn quantized_serving(&self) -> bool {
        self.policy.quantized_serving()
    }

    /// Simulation clock, in minutes.
    pub fn now_minutes(&self) -> u32 {
        self.env.now().0
    }

    /// Whether the simulation horizon is exhausted.
    pub fn done(&self) -> bool {
        self.env.done()
    }

    /// Whether the learned policy's parameters are finite.
    pub fn healthy(&self) -> bool {
        self.policy.is_healthy()
    }

    /// Digest over the *entire* replayable state: environment image plus
    /// policy RNG. Two cores with equal digests will answer every future
    /// request identically (given identical inputs).
    pub fn digest(&self) -> u64 {
        let mut bytes = self.env.save_state();
        let (key, counter, index) = self.policy.rng_state();
        for k in key {
            bytes.extend_from_slice(&k.to_le_bytes());
        }
        bytes.extend_from_slice(&counter.to_le_bytes());
        bytes.extend_from_slice(&index.to_le_bytes());
        fnv64(&bytes)
    }

    /// The fleet ledger (for tests asserting bitwise recovery).
    pub fn ledger(&self) -> &fairmove_sim::FleetLedger {
        self.env.ledger()
    }

    /// Applies one journal payload — `STEP <level>`, `DECIDE <level>`, or
    /// `EVENT <spec...>` — advancing the applied-sequence counter. Replay
    /// calls this with recorded payloads; live execution journals first and
    /// then calls this, so both paths are the same code.
    pub fn apply_payload(&mut self, payload: &str) -> Result<Applied, String> {
        // The record is consumed whether or not it executes (a horizon-
        // refused STEP refuses identically on live and replay paths), so
        // the applied-sequence counter always stays in lockstep with the
        // journal position.
        self.applied_seq += 1;
        let parts: Vec<&str> = payload.split_whitespace().collect();
        match parts.as_slice() {
            ["STEP", level] => Ok(Applied::Step(self.step(parse_level(level)?)?)),
            ["DECIDE", level] => Ok(Applied::Decide(self.decide(parse_level(level)?))),
            ["EVENT", rest @ ..] => {
                let (spec, text) = parse_event(rest)?;
                self.validate_spec(&spec)?;
                self.inject(spec, text);
                Ok(Applied::Event)
            }
            _ => Err(format!("unreplayable journal payload {payload:?}")),
        }
    }

    fn step(&mut self, level: ServiceLevel) -> Result<StepOutcome, String> {
        if self.env.done() {
            return Err("simulation horizon reached".into());
        }
        match level {
            ServiceLevel::Full => {
                let mut p = ResilientPolicy::new(&mut self.policy);
                self.env.step_slot(&mut p);
            }
            ServiceLevel::Fallback => {
                self.env.step_slot(&mut StayPolicy);
            }
            ServiceLevel::Greedy => {
                self.env.step_slot(&mut self.greedy);
            }
        }
        Ok(StepOutcome {
            now_minutes: self.env.now().0,
            trips: self.env.ledger().trips().len() as u64,
        })
    }

    fn decide(&mut self, level: ServiceLevel) -> DecideOutcome {
        let obs = self.env.observation();
        let ctxs = self.env.decision_contexts();
        let mut actions = Vec::with_capacity(ctxs.len());
        match level {
            ServiceLevel::Full => {
                let mut p = ResilientPolicy::new(&mut self.policy);
                p.decide_into(&obs, &ctxs, &mut actions);
            }
            ServiceLevel::Fallback => StayPolicy.decide_into(&obs, &ctxs, &mut actions),
            ServiceLevel::Greedy => self.greedy.decide_into(&obs, &ctxs, &mut actions),
        }
        let moved = actions
            .iter()
            .filter(|a| !matches!(a, Action::Stay))
            .count() as u64;
        DecideOutcome {
            decisions: ctxs.len() as u64,
            moved,
        }
    }

    /// Rejects fault specs whose ids don't exist in this world. A malformed
    /// client must get an `ERR 400` back, not crash the worker slots later
    /// when the environment indexes the phantom station/region/taxi.
    /// Rejection happens identically on the live and replay paths (the
    /// record is journaled before it executes), so a bad event in an old
    /// journal replays to the same refusal.
    fn validate_spec(&self, spec: &FaultSpec) -> Result<(), String> {
        let regions = self.config.city.n_regions;
        let stations = self.config.city.n_stations;
        let fleet = self.config.fleet_size;
        match *spec {
            FaultSpec::StationOutage { station, .. } if usize::from(station) >= stations => Err(
                format!("station {station} out of range (world has {stations})"),
            ),
            FaultSpec::DemandSurge { region, .. }
            | FaultSpec::DemandBlackout { region, .. }
            | FaultSpec::ObservationDropout { region, .. }
                if usize::from(region) >= regions =>
            {
                Err(format!(
                    "region {region} out of range (world has {regions})"
                ))
            }
            FaultSpec::TaxiBreakdown { taxi, .. } if taxi as usize >= fleet => {
                Err(format!("taxi {taxi} out of range (fleet has {fleet})"))
            }
            _ => Ok(()),
        }
    }

    fn inject(&mut self, spec: FaultSpec, text: String) {
        let _ = spec;
        self.events.push(text);
        self.reattach_plan();
    }

    /// Rebuilds the fault plan from the accumulated event list. The plan is
    /// an *input* (future windows), re-derived from journaled events, while
    /// currently-active fault effects live inside the environment image.
    fn reattach_plan(&mut self) {
        let mut plan = FaultPlan::new(self.config.seed ^ 0x5345_5256); // "SERV"
        for text in &self.events {
            let args: Vec<&str> = text.split_whitespace().collect();
            if let Ok((spec, _)) = parse_event(&args) {
                plan.push(spec);
            }
        }
        self.env.set_fault_plan(plan);
    }

    // -- checkpointing -----------------------------------------------------

    /// Serializes the full restorable state (see the module docs).
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&config_fingerprint(&self.config).to_le_bytes());
        out.extend_from_slice(&self.applied_seq.to_le_bytes());
        out.extend_from_slice(&self.alpha.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.events.len() as u32).to_le_bytes());
        for e in &self.events {
            out.extend_from_slice(&(e.len() as u32).to_le_bytes());
            out.extend_from_slice(e.as_bytes());
        }
        let mut policy_blob = Vec::new();
        self.policy
            .save(&mut policy_blob)
            .expect("writing to a Vec cannot fail");
        out.extend_from_slice(&(policy_blob.len() as u64).to_le_bytes());
        out.extend_from_slice(&policy_blob);
        let (key, counter, index) = self.policy.rng_state();
        for k in key {
            out.extend_from_slice(&k.to_le_bytes());
        }
        out.extend_from_slice(&counter.to_le_bytes());
        out.extend_from_slice(&index.to_le_bytes());
        let env_blob = self.env.save_state();
        out.extend_from_slice(&(env_blob.len() as u64).to_le_bytes());
        out.extend_from_slice(&env_blob);
        out
    }

    /// Rebuilds a core from [`DispatchCore::checkpoint`] bytes. Rejects
    /// snapshots from a different config or a different format version.
    pub fn from_checkpoint(config: SimConfig, payload: &[u8]) -> Result<Self, String> {
        let mut r = Reader { buf: payload };
        if r.take(8)? != MAGIC.as_slice() {
            return Err("bad checkpoint magic".into());
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(format!("unsupported checkpoint version {version}"));
        }
        if r.u64()? != config_fingerprint(&config) {
            return Err("checkpoint is for a different configuration".into());
        }
        let applied_seq = r.u64()?;
        let alpha = f64::from_bits(r.u64()?);
        let n_events = r.u32()? as usize;
        let mut events = Vec::with_capacity(n_events.min(payload.len()));
        for _ in 0..n_events {
            let len = r.u32()? as usize;
            let text = std::str::from_utf8(r.take(len)?)
                .map_err(|_| "non-utf8 event payload")?
                .to_string();
            events.push(text);
        }
        let policy_len = r.u64()? as usize;
        let policy_blob = r.take(policy_len)?.to_vec();
        let mut key = [0u32; 8];
        for k in &mut key {
            *k = r.u32()?;
        }
        let counter = r.u64()?;
        let index = r.u32()?;
        let env_len = r.u64()? as usize;
        let env_blob = r.take(env_len)?;
        if !r.buf.is_empty() {
            return Err("trailing bytes after checkpoint".into());
        }

        let env = Environment::restore_state(config.clone(), env_blob)
            .map_err(|e| format!("environment image rejected: {e}"))?;
        let mut policy = Cma2cPolicy::new(
            env.city(),
            Cma2cConfig {
                alpha,
                seed: config.seed,
                ..Cma2cConfig::default()
            },
        );
        policy
            .load(&mut policy_blob.as_slice())
            .map_err(|e| format!("policy snapshot rejected: {e}"))?;
        policy.restore_rng_state(key, counter, index);
        policy.freeze();
        let mut core = DispatchCore {
            config,
            alpha,
            env,
            policy,
            greedy: OraclePolicy::new(),
            events,
            applied_seq,
        };
        core.reattach_plan();
        Ok(core)
    }
}

/// What an applied payload did (for response formatting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applied {
    Step(StepOutcome),
    Decide(DecideOutcome),
    Event,
}

fn parse_level(s: &str) -> Result<ServiceLevel, String> {
    let mut chars = s.chars();
    match (chars.next().and_then(ServiceLevel::from_code), chars.next()) {
        (Some(level), None) => Ok(level),
        _ => Err(format!("bad service level {s:?}")),
    }
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() < n {
            return Err("truncated checkpoint".into());
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u32(&mut self) -> Result<u32, String> {
        let arr: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| "truncated checkpoint".to_string())?;
        Ok(u32::from_le_bytes(arr))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let arr: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| "truncated checkpoint".to_string())?;
        Ok(u64::from_le_bytes(arr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SimConfig {
        SimConfig::test_scale()
    }

    #[test]
    fn checkpoint_roundtrip_preserves_the_digest_and_future() {
        let mut a = DispatchCore::new(config(), 0.6);
        for payload in [
            "STEP F",
            "EVENT surge 3 1.5 2 6",
            "STEP S",
            "DECIDE F",
            "STEP G",
        ] {
            a.apply_payload(payload).unwrap();
        }
        let snapshot = a.checkpoint();
        let mut b = DispatchCore::from_checkpoint(config(), &snapshot).unwrap();
        assert_eq!(a.applied_seq(), b.applied_seq());
        assert_eq!(a.digest(), b.digest());
        // The restored core's *future* matches too — including CMA2C action
        // sampling, which consumes the restored RNG stream.
        for payload in ["STEP F", "DECIDE F", "STEP F"] {
            a.apply_payload(payload).unwrap();
            b.apply_payload(payload).unwrap();
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.ledger(), b.ledger());
    }

    #[test]
    fn quantized_serving_survives_warm_restart_bitwise() {
        // Quantization is derived from the frozen parameters, so it is NOT
        // checkpointed: the embedding server re-applies its configured mode
        // after restore and the int8 codes rebuild byte-identically.
        let mut a = DispatchCore::new(config(), 0.6);
        a.set_quantized_serving(true);
        assert!(a.quantized_serving());
        for payload in ["STEP F", "DECIDE F", "STEP F"] {
            a.apply_payload(payload).unwrap();
        }
        let snapshot = a.checkpoint();
        let mut b = DispatchCore::from_checkpoint(config(), &snapshot).unwrap();
        assert!(!b.quantized_serving(), "mode is not replayable state");
        b.set_quantized_serving(true);
        assert_eq!(a.digest(), b.digest());
        for payload in ["DECIDE F", "STEP F", "DECIDE F"] {
            a.apply_payload(payload).unwrap();
            b.apply_payload(payload).unwrap();
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.ledger(), b.ledger());
    }

    #[test]
    fn checkpoints_reject_other_configs_and_corruption() {
        let mut core = DispatchCore::new(config(), 0.6);
        core.apply_payload("STEP F").unwrap();
        let snapshot = core.checkpoint();
        let mut other = config();
        other.fleet_size += 1;
        let err = DispatchCore::from_checkpoint(other, &snapshot)
            .err()
            .expect("foreign config must be rejected");
        assert!(err.contains("different configuration"), "{err}");
        for cut in (0..snapshot.len()).step_by(211) {
            assert!(
                DispatchCore::from_checkpoint(config(), &snapshot[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn replay_reproduces_an_uninterrupted_run_bitwise() {
        let script = [
            "STEP F",
            "STEP F",
            "EVENT outage 1 2 8",
            "STEP S",
            "DECIDE G",
            "STEP F",
            "STEP G",
        ];
        let mut straight = DispatchCore::new(config(), 0.6);
        for p in script {
            straight.apply_payload(p).unwrap();
        }
        // Interrupted twin: checkpoint after 3 records, "crash", restore,
        // replay the rest from the (simulated) journal.
        let mut first = DispatchCore::new(config(), 0.6);
        for p in &script[..3] {
            first.apply_payload(p).unwrap();
        }
        let snapshot = first.checkpoint();
        drop(first);
        let mut revived = DispatchCore::from_checkpoint(config(), &snapshot).unwrap();
        for p in &script[3..] {
            revived.apply_payload(p).unwrap();
        }
        assert_eq!(straight.digest(), revived.digest());
        assert_eq!(straight.ledger(), revived.ledger());
    }

    #[test]
    fn out_of_range_event_ids_are_rejected_not_crashing() {
        // test_scale: 40 regions, 8 stations, 60 taxis. Before validation,
        // an outage on a phantom station was accepted and killed the worker
        // with an index panic when the outage window ended.
        let mut core = DispatchCore::new(config(), 0.6);
        for (payload, needle) in [
            ("EVENT outage 999 0 2", "station 999 out of range"),
            ("EVENT surge 40 1.5 0 2", "region 40 out of range"),
            ("EVENT blackout 65535 0 2", "region 65535 out of range"),
            ("EVENT breakdown 60 0 2", "taxi 60 out of range"),
        ] {
            let err = core.apply_payload(payload).err().expect(payload);
            assert!(err.contains(needle), "{payload}: {err}");
        }
        // The worker survives and keeps serving: valid ids at the world's
        // edge are accepted and subsequent steps run through the windows
        // where the phantom faults would have expired.
        core.apply_payload("EVENT outage 7 0 2").unwrap();
        core.apply_payload("EVENT breakdown 59 0 2").unwrap();
        for _ in 0..4 {
            core.apply_payload("STEP F").unwrap();
        }
    }

    #[test]
    fn rejected_events_replay_identically() {
        // A bad EVENT is journaled before it executes, so replay must hit
        // the same refusal and land on the same digest + sequence number.
        let script = ["STEP F", "EVENT outage 999 0 2", "STEP F"];
        let mut straight = DispatchCore::new(config(), 0.6);
        let mut replayed = DispatchCore::new(config(), 0.6);
        for p in script {
            let a = straight.apply_payload(p);
            let b = replayed.apply_payload(p);
            assert_eq!(a.is_err(), b.is_err(), "{p}");
        }
        assert_eq!(straight.applied_seq(), replayed.applied_seq());
        assert_eq!(straight.digest(), replayed.digest());
    }

    #[test]
    fn service_levels_differ_in_work_not_in_replayability() {
        let mut core = DispatchCore::new(config(), 0.6);
        // Fallback/greedy steps don't consume the CMA2C RNG: the stream is
        // reserved for Full-level inference, so a ladder change mid-run
        // can't desynchronize replay.
        let before = core.digest();
        core.apply_payload("DECIDE S").unwrap();
        core.apply_payload("DECIDE G").unwrap();
        let rng_after = core.policy.rng_state();
        assert_eq!(
            DispatchCore::new(config(), 0.6).policy.rng_state(),
            rng_after
        );
        let _ = before;
        core.apply_payload("DECIDE F").unwrap();
        assert_ne!(core.policy.rng_state(), rng_after, "Full consumes RNG");
    }
}
