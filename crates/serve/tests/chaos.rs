//! Chaos suite: the server under abuse — floods, dead clients, slow-loris,
//! zero budgets, crashes at armed kill points — must shed predictably,
//! degrade gracefully, and recover bit-identically.

use fairmove_faults::{KillMode, KillPoints};
use fairmove_serve::{Client, DispatchServer, ServeConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fairmove-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn queue_overflow_sheds_429_and_nothing_hangs() {
    let dir = fresh_dir("flood");
    let mut config = ServeConfig::test_scale(dir.clone());
    config.queue_depth = 1;
    let telemetry = config.telemetry.clone();
    let server = DispatchServer::start(config).unwrap();
    let addr = server.addr();

    let started = Instant::now();
    let workers: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let (mut ok, mut shed) = (0u64, 0u64);
                for _ in 0..8 {
                    let response = client.request("STEP").unwrap();
                    if response.starts_with("OK step") {
                        ok += 1;
                    } else if response.starts_with("ERR 429 shed") {
                        shed += 1;
                    } else {
                        panic!("unexpected response {response:?}");
                    }
                }
                (ok, shed)
            })
        })
        .collect();
    let (mut ok, mut shed) = (0u64, 0u64);
    for w in workers {
        let (o, s) = w.join().unwrap();
        ok += o;
        shed += s;
    }
    // Every request was answered (the joins above completed), fast: load
    // shedding never turns into hanging.
    assert_eq!(ok + shed, 64);
    assert!(ok > 0, "some steps must get through");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "flood took {:?}",
        started.elapsed()
    );
    let snapshot = telemetry.snapshot();
    assert_eq!(snapshot.counter("serve.shed_queue").unwrap_or(0), shed);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_budget_requests_are_shed_with_503_never_executed_past_deadline() {
    let dir = fresh_dir("deadline");
    let config = ServeConfig::test_scale(dir.clone());
    let telemetry = config.telemetry.clone();
    let server = DispatchServer::start(config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // A generous budget executes fine (and warms the cost model).
    let response = client.request("STEP 30000").unwrap();
    assert!(response.starts_with("OK step"), "{response}");
    // A zero budget can never be met: shed either at admission (the cost
    // model predicts a miss) or on dequeue (expired in queue) — both 503,
    // answered promptly, never silently executed.
    let started = Instant::now();
    let response = client.request("STEP 0").unwrap();
    assert!(response.starts_with("ERR 503 deadline"), "{response}");
    assert!(started.elapsed() < Duration::from_secs(5));
    let snapshot = telemetry.snapshot();
    let shed = snapshot.counter("serve.shed_predicted").unwrap_or(0)
        + snapshot.counter("serve.shed_deadline").unwrap_or(0);
    assert_eq!(shed, 1);
    // The shed request mutated nothing: exactly one step was journaled.
    let response = client.request("HEALTH").unwrap();
    let seq: u64 = response.split_whitespace().nth(3).unwrap().parse().unwrap();
    assert_eq!(seq, 1, "{response}");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sustained_overload_walks_the_ladder_down_and_counts_it() {
    let dir = fresh_dir("ladder");
    let mut config = ServeConfig::test_scale(dir.clone());
    // Every request counts as an overload tick: the budget is zero.
    config.step_budget = Duration::ZERO;
    config.demote_after = 2;
    let telemetry = config.telemetry.clone();
    let server = DispatchServer::start(config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    assert!(client.request("HEALTH").unwrap().starts_with("OK health F"));
    let mut levels = Vec::new();
    for _ in 0..6 {
        let response = client.request("STEP").unwrap();
        levels.push(response.split_whitespace().last().unwrap().to_string());
    }
    // Two strikes per rung: F F (demote) S S (demote) G G.
    assert_eq!(levels, vec!["F", "F", "S", "S", "G", "G"]);
    assert!(client.request("HEALTH").unwrap().starts_with("OK health G"));
    let snapshot = telemetry.snapshot();
    assert_eq!(snapshot.counter("serve.demotions"), Some(2));
    assert_eq!(snapshot.gauge("serve.ladder_level"), Some(2.0));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_between_journal_append_and_execution_replays_cleanly() {
    let dir = fresh_dir("postjournal");
    let kp = KillPoints::new(KillMode::Report);
    let mut config = ServeConfig::test_scale(dir.clone());
    config.kill_points = kp.clone();
    let sim = config.sim.clone();
    let server = DispatchServer::start(config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for _ in 0..3 {
        client.request("STEP").unwrap();
    }
    // The 4th append crashes the worker before the step executes: the
    // client sees either a 500 (handler noticed the dropped reply channel)
    // or a closed connection, never a fabricated success.
    kp.arm("serve.post_journal.crash", 1);
    let mut server = server;
    match client.request("STEP") {
        Ok(response) => assert!(response.starts_with("ERR 500"), "{response}"),
        Err(_) => {}
    }
    assert!(server.wait_worker_exit(Duration::from_secs(10)));
    drop(server);

    // The write-ahead record is replayed on restart: the revived server has
    // executed all 4 steps, same as a run that never crashed.
    let mut config = ServeConfig::test_scale(dir.clone());
    config.sim = sim.clone();
    let revived = DispatchServer::start(config).unwrap();
    assert_eq!(revived.recovery().replayed, 4);
    let mut client = Client::connect(revived.addr()).unwrap();
    let digest = client.request("DIGEST").unwrap();

    let dir2 = fresh_dir("postjournal-ref");
    let mut ref_config = ServeConfig::test_scale(dir2.clone());
    ref_config.sim = sim;
    let reference = DispatchServer::start(ref_config).unwrap();
    let mut ref_client = Client::connect(reference.addr()).unwrap();
    for _ in 0..4 {
        ref_client.request("STEP").unwrap();
    }
    assert_eq!(ref_client.request("DIGEST").unwrap(), digest);
    revived.shutdown();
    reference.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

#[test]
fn torn_checkpoint_from_a_mid_write_crash_falls_back_and_recovers() {
    let dir = fresh_dir("tornckpt");
    let kp = KillPoints::new(KillMode::Report);
    let mut config = ServeConfig::test_scale(dir.clone());
    config.kill_points = kp.clone();
    config.checkpoint_every = 1000; // only explicit CKPTs
    let sim = config.sim.clone();
    let mut server = DispatchServer::start(config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for _ in 0..3 {
        client.request("STEP").unwrap();
    }
    assert!(client.request("CKPT").unwrap().starts_with("OK ckpt"));
    client.request("STEP").unwrap();
    client.request("STEP").unwrap();
    // This checkpoint write is torn mid-flight and the worker dies.
    kp.arm("serve.ckpt.torn", 1);
    match client.request("CKPT") {
        Ok(response) => assert!(response.starts_with("ERR 500"), "{response}"),
        Err(_) => {}
    }
    assert!(server.wait_worker_exit(Duration::from_secs(10)));
    drop(server);

    // Restart: the torn newest checkpoint is rejected, the older valid one
    // warm-starts, and the journal replays the two steps past it.
    let mut config = ServeConfig::test_scale(dir.clone());
    config.sim = sim.clone();
    let revived = DispatchServer::start(config).unwrap();
    let recovery = revived.recovery();
    assert_eq!(recovery.warm_start_seq, Some(0), "{recovery:?}");
    assert_eq!(recovery.replayed, 2, "{recovery:?}");
    let mut client = Client::connect(revived.addr()).unwrap();
    let digest = client.request("DIGEST").unwrap();

    let dir2 = fresh_dir("tornckpt-ref");
    let mut ref_config = ServeConfig::test_scale(dir2.clone());
    ref_config.sim = sim;
    let reference = DispatchServer::start(ref_config).unwrap();
    let mut ref_client = Client::connect(reference.addr()).unwrap();
    for _ in 0..5 {
        ref_client.request("STEP").unwrap();
    }
    assert_eq!(ref_client.request("DIGEST").unwrap(), digest);
    revived.shutdown();
    reference.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

#[test]
fn slow_loris_and_dead_clients_do_not_wedge_the_listener() {
    let dir = fresh_dir("loris");
    let server = DispatchServer::start(ServeConfig::test_scale(dir.clone())).unwrap();
    let addr = server.addr();

    // Slow-loris: a partial line that never completes is answered 408 and
    // the connection dropped, within the line deadline.
    let started = Instant::now();
    let mut loris = TcpStream::connect(addr).unwrap();
    loris.write_all(b"STE").unwrap();
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = Vec::new();
    loris.read_to_end(&mut buf).unwrap();
    assert!(
        String::from_utf8_lossy(&buf).starts_with("ERR 408"),
        "got {buf:?}"
    );
    assert!(started.elapsed() < Duration::from_secs(8));

    // Half-close: a full line terminated by EOF instead of newline is
    // still served before the connection winds down.
    let mut half = TcpStream::connect(addr).unwrap();
    half.write_all(b"DIGEST").unwrap();
    half.shutdown(std::net::Shutdown::Write).unwrap();
    half.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut response = String::new();
    half.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("OK digest"), "{response}");

    // Abrupt disconnects mid-request leave the server serving.
    for _ in 0..3 {
        let mut rude = TcpStream::connect(addr).unwrap();
        rude.write_all(b"STEP\n").unwrap();
        drop(rude);
    }
    let mut client = Client::connect(addr).unwrap();
    assert!(client.request("HEALTH").unwrap().starts_with("OK health"));
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shed_counters_and_ladder_gauge_are_scrapable_over_metrics() {
    let dir = fresh_dir("metrics");
    let mut config = ServeConfig::test_scale(dir.clone());
    config.metrics_addr = Some("127.0.0.1:0".into());
    config.queue_depth = 1;
    let server = DispatchServer::start(config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.request("STEP 30000").unwrap();
    assert!(client.request("STEP 0").unwrap().starts_with("ERR 503"));

    let metrics_addr = server.metrics_addr().expect("metrics listener");
    let mut scrape = TcpStream::connect(metrics_addr).unwrap();
    scrape
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let mut body = String::new();
    scrape.read_to_string(&mut body).unwrap();
    for needle in [
        "serve_requests",
        "serve_steps 1",
        "serve_ladder_level",
        "serve_request_seconds_count",
    ] {
        assert!(body.contains(needle), "missing {needle} in:\n{body}");
    }
    // One of the two deadline-shed counters took the hit.
    assert!(
        body.contains("serve_shed_predicted 1") || body.contains("serve_shed_deadline 1"),
        "no shed counter in:\n{body}"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
