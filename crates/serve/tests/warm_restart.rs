//! Warm-restart determinism, as a property over generated scenarios.
//!
//! For each seed: derive a scenario-shaped world (via the testkit scenario
//! driver), script a random request sequence, and run it twice —
//! uninterrupted, and killed at a random record `k` then restarted on the
//! same data directory. The journal replay must bring the revived server
//! to a state digest (environment image + policy RNG) identical to the
//! uninterrupted run's, and every subsequent response must match.
//!
//! Thread counts: the simulator honors `FAIRMOVE_THREADS`; CI runs this
//! suite at 1 and 4 workers, and the digest must be identical at both.

use fairmove_serve::{Client, DispatchServer, ServeConfig};
use fairmove_testkit::{Scenario, TestRng};
use std::path::PathBuf;
use std::time::Duration;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fairmove-warm-restart-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Scripts a deterministic request sequence for a scenario: mostly steps,
/// some advisory decides, occasional fault injections.
fn script(scenario: &Scenario, rng: &mut TestRng, len: usize) -> Vec<String> {
    (0..len)
        .map(|_| match rng.below(10) {
            0..=5 => "STEP".to_string(),
            6 | 7 => "DECIDE".to_string(),
            8 => {
                let region = rng.below(scenario.n_regions as u64);
                let start = rng.below(u64::from(scenario.slots));
                let end = start + rng.range(1, 8);
                format!("EVENT surge {region} 1.5 {start} {end}")
            }
            _ => {
                let station = rng.below(scenario.n_stations as u64);
                let start = rng.below(u64::from(scenario.slots));
                let end = start + rng.range(1, 8);
                format!("EVENT outage {station} {start} {end}")
            }
        })
        .collect()
}

fn serve_config(scenario: &Scenario, dir: PathBuf) -> ServeConfig {
    let mut config = ServeConfig::test_scale(dir);
    config.sim = scenario.sim_config();
    config.alpha = scenario.alpha;
    // A small interval so the killed run usually has both a checkpoint to
    // warm-start from and a journal tail to replay over it.
    config.checkpoint_every = 5;
    config
}

fn digest_of(client: &mut Client) -> String {
    let response = client.request("DIGEST").expect("digest");
    assert!(response.starts_with("OK digest "), "{response}");
    response
}

#[test]
fn killed_and_restarted_run_matches_uninterrupted_run_bitwise() {
    for seed in [11u64, 29, 47, 83] {
        let scenario = Scenario::generate(seed);
        let mut rng = TestRng::new(seed ^ 0xD15_7A7C4);
        let n = 12 + rng.below(8) as usize;
        let commands = script(&scenario, &mut rng, n);
        let k = 1 + rng.below(commands.len() as u64 - 1) as usize;

        // Uninterrupted reference run.
        let dir_a = fresh_dir(&format!("a{seed}"));
        let server_a = DispatchServer::start(serve_config(&scenario, dir_a.clone())).unwrap();
        let mut client_a = Client::connect(server_a.addr()).unwrap();
        for cmd in &commands {
            client_a.request(cmd).unwrap();
        }
        let reference = digest_of(&mut client_a);

        // Killed-at-k twin on its own data directory.
        let dir_b = fresh_dir(&format!("b{seed}"));
        let mut server_b = DispatchServer::start(serve_config(&scenario, dir_b.clone())).unwrap();
        let mut client_b = Client::connect(server_b.addr()).unwrap();
        for cmd in &commands[..k] {
            client_b.request(cmd).unwrap();
        }
        client_b.fire_and_forget("KILL").unwrap();
        assert!(
            server_b.wait_worker_exit(Duration::from_secs(10)),
            "seed {seed}: worker must die on KILL"
        );
        drop(server_b);

        // Restart on the same directory: checkpoint + journal replay.
        let revived = DispatchServer::start(serve_config(&scenario, dir_b.clone())).unwrap();
        let recovery = revived.recovery();
        assert_eq!(
            recovery.warm_start_seq.is_some() || recovery.replayed > 0,
            k > 0,
            "seed {seed}: recovery must have something to recover ({recovery:?})"
        );
        let mut client_r = Client::connect(revived.addr()).unwrap();
        for cmd in &commands[k..] {
            client_r.request(cmd).unwrap();
        }
        let recovered = digest_of(&mut client_r);
        assert_eq!(
            reference,
            recovered,
            "seed {seed}, kill at {k}/{}: digests diverged (recovery {recovery:?})",
            commands.len()
        );

        server_a.shutdown();
        revived.shutdown();
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }
}

#[test]
fn restart_after_graceful_shutdown_resumes_from_the_final_checkpoint() {
    let scenario = Scenario::generate(5);
    let dir = fresh_dir("graceful");
    let server = DispatchServer::start(serve_config(&scenario, dir.clone())).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for _ in 0..7 {
        client.request("STEP").unwrap();
    }
    let before = digest_of(&mut client);
    drop(client);
    server.shutdown(); // writes a final checkpoint

    let revived = DispatchServer::start(serve_config(&scenario, dir.clone())).unwrap();
    // Everything is inside the final checkpoint; no replay needed.
    assert_eq!(revived.recovery().replayed, 0);
    assert!(revived.recovery().warm_start_seq.is_some());
    let mut client = Client::connect(revived.addr()).unwrap();
    assert_eq!(digest_of(&mut client), before);
    revived.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
