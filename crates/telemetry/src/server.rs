//! A live `/metrics` endpoint: a minimal, dependency-free HTTP server that
//! renders the current [`Telemetry`] snapshot in Prometheus text-exposition
//! format, with accurate percentile gauges appended
//! ([`crate::export::render_prometheus_percentiles`]).
//!
//! The server is one `std::net::TcpListener` accept loop on its own thread;
//! each request takes a fresh snapshot, so scraping never blocks recording
//! (snapshots only take the registry mutex briefly). Just enough HTTP/1.1
//! is spoken for `curl` and a Prometheus scraper: the request line is read,
//! `GET /metrics` gets a `200` with the payload, anything else a `404`.
//!
//! ```no_run
//! use fairmove_telemetry::{server::serve_metrics, Telemetry};
//!
//! let tel = Telemetry::enabled();
//! let server = serve_metrics(tel.clone(), "127.0.0.1:9184").unwrap();
//! println!("scrape http://{}/metrics", server.addr());
//! // … run the workload …
//! server.shutdown();
//! ```

use crate::export::{render_prometheus, render_prometheus_percentiles};
use crate::Telemetry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running metrics server; dropping it (or calling
/// [`MetricsServer::shutdown`]) stops the accept loop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Binds `addr` (e.g. `"127.0.0.1:9184"`; port 0 picks a free port) and
/// serves the registry of `telemetry` at `/metrics` until shutdown.
pub fn serve_metrics(telemetry: Telemetry, addr: &str) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("fairmove-metrics".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // Serve inline: scrapes are rare and the payload is small,
                // so a worker pool would be complexity for nothing.
                let _ = handle_request(stream, &telemetry);
            }
        })
        .expect("spawn metrics server thread");
    Ok(MetricsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

fn handle_request(mut stream: TcpStream, telemetry: &Telemetry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    // Read until the end of the request head (or timeout); only the request
    // line matters.
    let mut buf = [0u8; 1024];
    let mut head = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request_line = std::str::from_utf8(&head)
        .unwrap_or("")
        .lines()
        .next()
        .unwrap_or("");
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, body) = if path == "/metrics" || path.starts_with("/metrics?") {
        let snapshot = telemetry.snapshot();
        let mut body = render_prometheus(&snapshot);
        body.push_str(&render_prometheus_percentiles(&snapshot));
        ("200 OK", body)
    } else {
        ("404 Not Found", "try /metrics\n".to_string())
    };
    let response = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

impl MetricsServer {
    /// The bound address (with the actual port when bound with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // The accept loop blocks in `incoming()`; a throwaway connection
        // wakes it so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn request(addr: SocketAddr, path: &str) -> (String, String) {
        // A plain TCP client, deliberately not an HTTP library: the
        // acceptance criterion is that raw-socket scrapers work.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .unwrap();
        let mut reader = BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut line = String::new();
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if line == "\r\n" || line.is_empty() {
                break;
            }
        }
        let mut body = String::new();
        reader.read_to_string(&mut body).unwrap();
        (status, body)
    }

    #[test]
    fn serves_prometheus_text_with_percentiles_over_plain_tcp() {
        let tel = Telemetry::enabled();
        tel.counter("sim.trips").add(7);
        let h = tel.histogram_labeled(
            "decide.latency_seconds",
            &[("method", "cma2c"), ("region_group", "3")],
            crate::buckets::LATENCY_SECONDS,
        );
        for i in 0..100 {
            h.observe(0.001 * (i + 1) as f64);
        }
        let server = serve_metrics(tel.clone(), "127.0.0.1:0").unwrap();
        let (status, body) = request(server.addr(), "/metrics");
        assert!(status.starts_with("HTTP/1.1 200"), "status: {status}");
        assert!(body.contains("# TYPE sim_trips counter"));
        assert!(body.contains("sim_trips 7"));
        assert!(
            body.contains("decide_latency_seconds_count{method=\"cma2c\",region_group=\"3\"} 100")
        );
        // Percentile gauges ride along, with labels and accurate values.
        assert!(body.contains(
            "decide_latency_seconds_quantile{method=\"cma2c\",region_group=\"3\",quantile=\"0.99\"}"
        ));
        // A second scrape sees newly recorded data (live, not cached).
        tel.counter("sim.trips").add(1);
        let (_, body2) = request(server.addr(), "/metrics");
        assert!(body2.contains("sim_trips 8"));
        server.shutdown();
    }

    #[test]
    fn unknown_paths_get_404() {
        let tel = Telemetry::enabled();
        let server = serve_metrics(tel, "127.0.0.1:0").unwrap();
        let (status, body) = request(server.addr(), "/nope");
        assert!(status.starts_with("HTTP/1.1 404"), "status: {status}");
        assert!(body.contains("/metrics"));
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_and_frees_the_port() {
        let tel = Telemetry::enabled();
        let server = serve_metrics(tel, "127.0.0.1:0").unwrap();
        let addr = server.addr();
        server.shutdown();
        // The port is released: rebinding succeeds.
        let _rebound = TcpListener::bind(addr).unwrap();
    }
}
