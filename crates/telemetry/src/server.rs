//! A live `/metrics` endpoint: a minimal, dependency-free HTTP server that
//! renders the current [`Telemetry`] snapshot in Prometheus text-exposition
//! format, with accurate percentile gauges appended
//! ([`crate::export::render_prometheus_percentiles`]).
//!
//! The server is one `std::net::TcpListener` accept loop on its own thread;
//! each request takes a fresh snapshot, so scraping never blocks recording
//! (snapshots only take the registry mutex briefly). Just enough HTTP/1.1
//! is spoken for `curl` and a Prometheus scraper: the request line is read,
//! `GET /metrics` gets a `200` with the payload, anything else a `404`.
//!
//! ```no_run
//! use fairmove_telemetry::{server::serve_metrics, Telemetry};
//!
//! let tel = Telemetry::enabled();
//! let server = serve_metrics(tel.clone(), "127.0.0.1:9184").unwrap();
//! println!("scrape http://{}/metrics", server.addr());
//! // … run the workload …
//! server.shutdown();
//! ```

use crate::export::{render_prometheus, render_prometheus_percentiles};
use crate::Telemetry;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-read timeout: a client that sends *nothing* for this long is cut off.
const READ_TIMEOUT: Duration = Duration::from_millis(500);
/// Overall deadline for receiving the request head. A slow-loris client that
/// drips one byte per read resets the per-read timeout forever; this bounds
/// the total time the (single-threaded) accept loop spends on one client.
const HEAD_DEADLINE: Duration = Duration::from_secs(2);
/// Maximum request-head size accepted before answering 431.
const MAX_HEAD_BYTES: usize = 8192;

/// A running metrics server; dropping it (or calling
/// [`MetricsServer::shutdown`]) stops the accept loop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Binds `addr` (e.g. `"127.0.0.1:9184"`; port 0 picks a free port) and
/// serves the registry of `telemetry` at `/metrics` until shutdown.
pub fn serve_metrics(telemetry: Telemetry, addr: &str) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("fairmove-metrics".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // Serve inline: scrapes are rare and the payload is small,
                // so a worker pool would be complexity for nothing.
                let _ = handle_request(stream, &telemetry);
            }
        })
        .expect("spawn metrics server thread");
    Ok(MetricsServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

/// How reading the request head ended.
enum HeadRead {
    /// A complete head (`\r\n\r\n` seen).
    Complete(Vec<u8>),
    /// The client half-closed (or the connection dropped) before a complete
    /// head arrived.
    Closed,
    /// The head deadline elapsed first (slow-loris drip or silent client).
    TimedOut,
    /// The head exceeded [`MAX_HEAD_BYTES`].
    TooLarge,
}

/// Reads the request head under both the per-read timeout and the overall
/// deadline, with a bounded buffer. Shared with the dispatch-server crate's
/// expectations: slow or abusive clients get a definite answer and the
/// connection back within [`HEAD_DEADLINE`], never a hung accept loop.
fn read_head(stream: &mut TcpStream) -> std::io::Result<HeadRead> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let started = Instant::now();
    let mut buf = [0u8; 1024];
    let mut head = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return Ok(HeadRead::Closed),
            Ok(n) => {
                if head.len() + n > MAX_HEAD_BYTES {
                    return Ok(HeadRead::TooLarge);
                }
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") {
                    return Ok(HeadRead::Complete(head));
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Per-read timeout: keep waiting only while the overall
                // deadline allows.
            }
            Err(_) => return Ok(HeadRead::Closed),
        }
        if started.elapsed() >= HEAD_DEADLINE {
            return Ok(HeadRead::TimedOut);
        }
    }
}

fn handle_request(mut stream: TcpStream, telemetry: &Telemetry) -> std::io::Result<()> {
    let head = match read_head(&mut stream)? {
        HeadRead::Complete(head) => head,
        // Nobody left to answer; just release the connection.
        HeadRead::Closed => return Ok(()),
        HeadRead::TimedOut => return respond(&mut stream, "408 Request Timeout", "too slow\n"),
        HeadRead::TooLarge => {
            return respond(
                &mut stream,
                "431 Request Header Fields Too Large",
                "head too large\n",
            )
        }
    };
    let request_line = std::str::from_utf8(&head)
        .unwrap_or("")
        .lines()
        .next()
        .unwrap_or("");
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    if path == "/metrics" || path.starts_with("/metrics?") {
        let snapshot = telemetry.snapshot();
        let mut body = render_prometheus(&snapshot);
        body.push_str(&render_prometheus_percentiles(&snapshot));
        respond(&mut stream, "200 OK", &body)
    } else {
        respond(&mut stream, "404 Not Found", "try /metrics\n")
    }
}

fn respond(stream: &mut TcpStream, status: &str, body: &str) -> std::io::Result<()> {
    let response = format!(
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

impl MetricsServer {
    /// The bound address (with the actual port when bound with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // The accept loop blocks in `incoming()`; a throwaway connection
        // wakes it so it can observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn request(addr: SocketAddr, path: &str) -> (String, String) {
        // A plain TCP client, deliberately not an HTTP library: the
        // acceptance criterion is that raw-socket scrapers work.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .unwrap();
        let mut reader = BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let mut line = String::new();
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if line == "\r\n" || line.is_empty() {
                break;
            }
        }
        let mut body = String::new();
        reader.read_to_string(&mut body).unwrap();
        (status, body)
    }

    #[test]
    fn serves_prometheus_text_with_percentiles_over_plain_tcp() {
        let tel = Telemetry::enabled();
        tel.counter("sim.trips").add(7);
        let h = tel.histogram_labeled(
            "decide.latency_seconds",
            &[("method", "cma2c"), ("region_group", "3")],
            crate::buckets::LATENCY_SECONDS,
        );
        for i in 0..100 {
            h.observe(0.001 * (i + 1) as f64);
        }
        let server = serve_metrics(tel.clone(), "127.0.0.1:0").unwrap();
        let (status, body) = request(server.addr(), "/metrics");
        assert!(status.starts_with("HTTP/1.1 200"), "status: {status}");
        assert!(body.contains("# TYPE sim_trips counter"));
        assert!(body.contains("sim_trips 7"));
        assert!(
            body.contains("decide_latency_seconds_count{method=\"cma2c\",region_group=\"3\"} 100")
        );
        // Percentile gauges ride along, with labels and accurate values.
        assert!(body.contains(
            "decide_latency_seconds_quantile{method=\"cma2c\",region_group=\"3\",quantile=\"0.99\"}"
        ));
        // A second scrape sees newly recorded data (live, not cached).
        tel.counter("sim.trips").add(1);
        let (_, body2) = request(server.addr(), "/metrics");
        assert!(body2.contains("sim_trips 8"));
        server.shutdown();
    }

    #[test]
    fn unknown_paths_get_404() {
        let tel = Telemetry::enabled();
        let server = serve_metrics(tel, "127.0.0.1:0").unwrap();
        let (status, body) = request(server.addr(), "/nope");
        assert!(status.starts_with("HTTP/1.1 404"), "status: {status}");
        assert!(body.contains("/metrics"));
        server.shutdown();
    }

    #[test]
    fn slow_loris_drip_is_answered_408_within_the_deadline() {
        let tel = Telemetry::enabled();
        let server = serve_metrics(tel, "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let started = Instant::now();
        let mut stream = TcpStream::connect(addr).unwrap();
        // Drip the request one byte at a time from a background thread —
        // each byte lands well inside the per-read timeout, so only the
        // overall head deadline can stop this.
        let writer = {
            let mut drip = stream.try_clone().unwrap();
            std::thread::spawn(move || {
                for b in b"GET /metrics HTTP/1.1\r\nHost: t\r\n".iter().cycle() {
                    if drip.write_all(&[*b]).is_err() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            })
        };
        stream
            .set_read_timeout(Some(HEAD_DEADLINE + Duration::from_secs(3)))
            .unwrap();
        let mut response = String::new();
        let _ = BufReader::new(&mut stream).read_line(&mut response);
        assert!(
            response.starts_with("HTTP/1.1 408"),
            "expected 408, got {response:?}"
        );
        assert!(
            started.elapsed() < HEAD_DEADLINE + Duration::from_secs(2),
            "slow-loris held the server for {:?}",
            started.elapsed()
        );
        drop(stream);
        writer.join().unwrap();
        server.shutdown();
    }

    #[test]
    fn half_close_before_a_complete_head_releases_the_connection() {
        let tel = Telemetry::enabled();
        let server = serve_metrics(tel.clone(), "127.0.0.1:0").unwrap();
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /metr").unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        // The server sees EOF mid-head and drops the connection without a
        // response — and, crucially, without stalling later clients.
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut leftover = String::new();
        let n = stream.read_to_string(&mut leftover).unwrap_or(0);
        assert_eq!(n, 0, "half-closed request must get no response");
        let (status, _) = request(addr, "/metrics");
        assert!(status.starts_with("HTTP/1.1 200"), "status: {status}");
        server.shutdown();
    }

    #[test]
    fn oversized_heads_get_431() {
        let tel = Telemetry::enabled();
        let server = serve_metrics(tel, "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        // A never-terminated head larger than the server's buffer bound.
        let junk = vec![b'x'; MAX_HEAD_BYTES + 1024];
        stream.write_all(b"GET /metrics HTTP/1.1\r\n").unwrap();
        stream.write_all(&junk).unwrap();
        let mut reader = BufReader::new(stream);
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        assert!(status.starts_with("HTTP/1.1 431"), "status: {status}");
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_and_frees_the_port() {
        let tel = Telemetry::enabled();
        let server = serve_metrics(tel, "127.0.0.1:0").unwrap();
        let addr = server.addr();
        server.shutdown();
        // The port is released: rebinding succeeds.
        let _rebound = TcpListener::bind(addr).unwrap();
    }
}
