//! # fairmove-telemetry
//!
//! Structured observability for the FairMove stack: span timers, a typed
//! metrics registry, and exporters. The paper's pipeline is built on event
//! logs (2.48 B GPS records, 23.2 M transactions); this crate is the
//! reproduction's equivalent substrate — every layer (simulator, learners,
//! runner, bench binaries) records into one registry, and a run can be
//! summarized as a [`RunReport`] and diffed across commits.
//!
//! ## Design
//!
//! * **Handles, not lookups.** [`Telemetry::counter`]/[`Telemetry::gauge`]/
//!   [`Telemetry::histogram`] register a metric once (behind a mutex) and
//!   return a cloneable handle backed by an `Arc`'d atomic cell. The hot
//!   path — [`Counter::inc`], [`Gauge::set`], [`Histogram::observe`] — is a
//!   few atomic operations with **zero heap allocation** and no locking, so
//!   parallel training loops can record concurrently.
//! * **Disabled means free.** A [`Telemetry::disabled`] handle hands out
//!   no-op metric handles; recording through them is a branch on an
//!   always-`None` `Option`. Instrumented code needs no `if` guards.
//! * **Deterministically inert.** Nothing in this crate touches simulation
//!   RNG or control flow; enabling telemetry must never change what a run
//!   computes (the sim crate enforces this with a bit-identical-ledger
//!   test).
//! * **Deterministic export.** Registries are `BTreeMap`s, so snapshots and
//!   every exporter list metrics in sorted name order — two runs of the same
//!   build produce byte-identical reports modulo timing values.
//!
//! Implementation note: the registry mutex is `std::sync::Mutex`, taken only
//! on the (cold) registration path; the hot path is lock-free atomics, so a
//! fancier lock would buy nothing.
//!
//! ## Example
//!
//! ```
//! use fairmove_telemetry::{buckets, Telemetry};
//!
//! let tel = Telemetry::enabled();
//! let trips = tel.counter("sim.trips");
//! trips.add(3);
//! let eps = tel.gauge("dqn.epsilon");
//! eps.set(0.05);
//! let lat = tel.histogram("sim.step_slot_seconds", buckets::LATENCY_SECONDS);
//! lat.observe(0.002);
//! {
//!     let _span = tel.span("sim.step_slot_seconds"); // records on drop
//! }
//! let snap = tel.snapshot();
//! assert_eq!(snap.counter("sim.trips"), Some(3));
//! println!("{}", fairmove_telemetry::export::render_text(&snap));
//! ```

pub mod export;
pub mod hdr;
pub mod metrics;
pub mod report;
pub mod server;
pub mod span;
pub mod trace;

pub use metrics::{buckets, Counter, Gauge, Histogram, HistogramSnapshot, Snapshot, Telemetry};
pub use report::RunReport;
pub use span::Span;

/// Opens a timing span on a [`Telemetry`] handle: `span!(tel, "name")` is
/// `tel.span("name")`. Bind the guard (`let _span = span!(…)`) — the elapsed
/// wall time is recorded into the histogram `name` when the guard drops.
#[macro_export]
macro_rules! span {
    ($telemetry:expr, $name:expr) => {
        $telemetry.span($name)
    };
}

/// Opens a hierarchical trace span (see [`trace`]), returning
/// `Option<`[`trace::TraceSpan`]`>` — bind the guard:
/// `let _t = trace_span!("decide");` or `trace_span!("wave", wave as u64)`
/// to attach a `u64` argument. The global enabled flag is checked *first*,
/// so when tracing is off the whole expression is a single relaxed atomic
/// load and a `None`; the span name is interned once per call site.
#[macro_export]
macro_rules! trace_span {
    ($name:expr) => {
        $crate::trace_span!($name, 0u64)
    };
    ($name:expr, $arg:expr) => {
        if $crate::trace::is_enabled() {
            static __FAIRMOVE_SPAN_NAME: ::std::sync::OnceLock<$crate::trace::SpanName> =
                ::std::sync::OnceLock::new();
            Some($crate::trace::TraceSpan::with_arg(
                *__FAIRMOVE_SPAN_NAME.get_or_init(|| $crate::trace::intern($name)),
                $arg,
            ))
        } else {
            None
        }
    };
}
