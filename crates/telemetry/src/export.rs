//! Exporters: render a [`Snapshot`] as pretty text, JSON, or Prometheus
//! text-exposition format.
//!
//! All three are hand-rolled (the formats involved are tiny) and
//! deterministic: snapshots are name-sorted, so identical registries render
//! byte-identically. A minimal JSON validator ([`validate_json`]) is
//! included so tests — and downstream tooling without a JSON dependency —
//! can check parseability.

use crate::metrics::{HistogramSnapshot, Snapshot};
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Pretty text
// ---------------------------------------------------------------------------

/// Renders a human-readable dashboard view: counters, gauges, then each
/// histogram with summary statistics and a bar per (non-empty) bucket.
pub fn render_text(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    if snapshot.is_empty() {
        out.push_str("(no metrics recorded)\n");
        return out;
    }
    if !snapshot.counters.is_empty() {
        out.push_str("counters:\n");
        let width = key_width(snapshot.counters.iter().map(|(n, _)| n.as_str()));
        for (name, value) in &snapshot.counters {
            let _ = writeln!(out, "  {name:<width$}  {value}");
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("gauges:\n");
        let width = key_width(snapshot.gauges.iter().map(|(n, _)| n.as_str()));
        for (name, value) in &snapshot.gauges {
            let _ = writeln!(out, "  {name:<width$}  {value:.6}");
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("histograms:\n");
        for h in &snapshot.histograms {
            let _ = writeln!(
                out,
                "  {}  count {}  mean {:.6}  p50 {}  p99 {}  p999 {}",
                h.name,
                h.count,
                h.mean(),
                quantile_label(h.quantile(0.5)),
                quantile_label(h.quantile(0.99)),
                quantile_label(h.quantile(0.999)),
            );
            let max = h.counts.iter().copied().max().unwrap_or(0).max(1) as f64;
            for (i, &count) in h.counts.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let le = h
                    .bounds
                    .get(i)
                    .map(|b| bound_label(*b))
                    .unwrap_or_else(|| "+Inf".to_string());
                let bar = "#".repeat(((count as f64 / max) * 30.0).ceil() as usize);
                let _ = writeln!(out, "    le {le:<10}  {count:>8}  {bar}");
            }
        }
    }
    out
}

fn key_width<'a>(names: impl Iterator<Item = &'a str>) -> usize {
    names.map(str::len).max().unwrap_or(0)
}

fn bound_label(bound: f64) -> String {
    if bound.is_infinite() {
        "+Inf".to_string()
    } else {
        format!("{bound}")
    }
}

fn quantile_label(value: f64) -> String {
    if value.is_infinite() {
        "+Inf".to_string()
    } else {
        format!("{value:.6}")
    }
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

/// Renders the snapshot as a single-line JSON object:
/// `{"counters":{…},"gauges":{…},"histograms":{name:{"bounds":…,"counts":…,"sum":…,"count":…}}}`.
/// Non-finite numbers render as `null` (JSON has no NaN/Inf).
pub fn render_json(snapshot: &Snapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(name), value);
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(name), json_f64(*value));
    }
    out.push_str("},\"histograms\":{");
    for (i, h) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(&h.name), histogram_json(h));
    }
    out.push_str("}}");
    out
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let mut out = String::from("{\"bounds\":[");
    for (i, b) in h.bounds.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_f64(*b));
    }
    out.push_str("],\"counts\":[");
    for (i, c) in h.counts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{c}");
    }
    let _ = write!(out, "],\"sum\":{},\"count\":{}}}", json_f64(h.sum), h.count);
    out
}

/// A JSON number for `value`, or `null` when non-finite.
pub fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// A JSON string literal for `s` (escapes quotes, backslashes, control
/// characters).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Renders the snapshot in the Prometheus text-exposition format. Metric
/// names are sanitized (`.` and any other invalid character become `_`);
/// histogram buckets are emitted cumulatively with `le` labels plus the
/// `+Inf` bucket, `_sum`, and `_count` series. Labeled histograms carry
/// their label pairs (key-sorted, values escaped) on every series line;
/// the `# TYPE` header is emitted once per metric family, not once per
/// label combination.
pub fn render_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let name = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let name = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", prometheus_f64(*value));
    }
    let mut last_family: Option<String> = None;
    for h in &snapshot.histograms {
        let name = prometheus_name(h.base_name());
        if last_family.as_deref() != Some(&name) {
            let _ = writeln!(out, "# TYPE {name} histogram");
            last_family = Some(name.clone());
        }
        let labels = prometheus_labels(&h.labels);
        let mut cumulative = 0u64;
        for (i, &count) in h.counts.iter().enumerate() {
            cumulative += count;
            let le = h
                .bounds
                .get(i)
                .map(|b| prometheus_f64(*b))
                .unwrap_or_else(|| "+Inf".to_string());
            if labels.is_empty() {
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            } else {
                let _ = writeln!(out, "{name}_bucket{{{labels},le=\"{le}\"}} {cumulative}");
            }
        }
        if labels.is_empty() {
            let _ = writeln!(out, "{name}_sum {}", prometheus_f64(h.sum));
            let _ = writeln!(out, "{name}_count {}", h.count);
        } else {
            let _ = writeln!(out, "{name}_sum{{{labels}}} {}", prometheus_f64(h.sum));
            let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count);
        }
    }
    out
}

/// Renders accurate percentile gauges for every non-empty histogram:
/// `{name}_quantile{quantile="0.5|0.9|0.99|0.999"} value` lines (plus the
/// histogram's own labels when present), backed by the log-linear storage.
/// Served alongside [`render_prometheus`] by the `/metrics` endpoint so
/// dashboards get tail latencies without PromQL `histogram_quantile`
/// interpolation error.
pub fn render_prometheus_percentiles(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_family: Option<String> = None;
    for h in &snapshot.histograms {
        if h.count == 0 {
            continue;
        }
        let name = prometheus_name(h.base_name());
        if last_family.as_deref() != Some(&name) {
            let _ = writeln!(out, "# TYPE {name}_quantile gauge");
            last_family = Some(name.clone());
        }
        let labels = prometheus_labels(&h.labels);
        for q in ["0.5", "0.9", "0.99", "0.999"] {
            let value = prometheus_f64(h.quantile(q.parse().expect("literal quantile")));
            if labels.is_empty() {
                let _ = writeln!(out, "{name}_quantile{{quantile=\"{q}\"}} {value}");
            } else {
                let _ = writeln!(out, "{name}_quantile{{{labels},quantile=\"{q}\"}} {value}");
            }
        }
    }
    out
}

/// Renders sorted label pairs as `k="v",…` (no braces). Keys are sanitized
/// like metric names; values get the Prometheus label-value escapes:
/// backslash, double quote, and newline.
pub fn prometheus_labels(labels: &[(String, String)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&prometheus_name(k));
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out
}

/// Escapes a Prometheus label value: `\` → `\\`, `"` → `\"`, newline →
/// `\n` (the three escapes the exposition format defines).
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Maps a metric name onto the Prometheus charset `[a-zA-Z0-9_:]`,
/// prefixing an underscore if the first character is a digit.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let valid = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if valid { c } else { '_' });
    }
    out
}

fn prometheus_f64(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value}")
    }
}

// ---------------------------------------------------------------------------
// JSON validation (for tests and dependency-free tooling)
// ---------------------------------------------------------------------------

/// Checks that `input` is one complete, well-formed JSON value. Returns the
/// byte offset and message of the first error. This is a validator, not a
/// parser — it builds nothing.
pub fn validate_json(input: &str) -> Result<(), String> {
    let mut v = Validator {
        bytes: input.as_bytes(),
        pos: 0,
    };
    v.skip_ws();
    v.value()?;
    v.skip_ws();
    if v.pos != v.bytes.len() {
        return Err(format!("trailing data at byte {}", v.pos));
    }
    Ok(())
}

struct Validator<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Validator<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("expected a JSON value at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(c) = self.peek() {
            self.pos += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => match self.peek() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                        self.pos += 1;
                    }
                    Some(b'u') => {
                        self.pos += 1;
                        for _ in 0..4 {
                            match self.peek() {
                                Some(h) if h.is_ascii_hexdigit() => self.pos += 1,
                                _ => return Err(format!("bad \\u escape at byte {}", self.pos)),
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", self.pos)),
                },
                c if c < 0x20 => return Err(format!("raw control char at byte {}", self.pos - 1)),
                _ => {}
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(format!("expected digits at byte {}", self.pos));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(format!("expected fraction digits at byte {}", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(format!("expected exponent digits at byte {}", self.pos));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    /// A small fixed registry used by the golden tests.
    fn sample() -> Snapshot {
        let tel = Telemetry::enabled();
        tel.counter("sim.trips").add(5);
        tel.gauge("dqn.epsilon").set(0.125);
        let h = tel.histogram("lat", &[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        h.observe(9.0);
        tel.snapshot()
    }

    #[test]
    fn json_golden_output() {
        let json = render_json(&sample());
        assert_eq!(
            json,
            "{\"counters\":{\"sim.trips\":5},\
             \"gauges\":{\"dqn.epsilon\":0.125},\
             \"histograms\":{\"lat\":{\"bounds\":[1,2],\"counts\":[1,1,1],\"sum\":11,\"count\":3}}}"
        );
        validate_json(&json).unwrap();
    }

    #[test]
    fn prometheus_golden_output() {
        let prom = render_prometheus(&sample());
        assert_eq!(
            prom,
            "# TYPE sim_trips counter\n\
             sim_trips 5\n\
             # TYPE dqn_epsilon gauge\n\
             dqn_epsilon 0.125\n\
             # TYPE lat histogram\n\
             lat_bucket{le=\"1\"} 1\n\
             lat_bucket{le=\"2\"} 2\n\
             lat_bucket{le=\"+Inf\"} 3\n\
             lat_sum 11\n\
             lat_count 3\n"
        );
    }

    #[test]
    fn text_render_mentions_every_metric() {
        let text = render_text(&sample());
        assert!(text.contains("sim.trips"));
        assert!(text.contains("dqn.epsilon"));
        assert!(text.contains("lat"));
        assert!(text.contains("count 3"));
        assert!(text.contains("le +Inf"));
        assert!(text.contains("p999"));
    }

    #[test]
    fn prometheus_labeled_histogram_golden_output() {
        let tel = Telemetry::enabled();
        let h = tel.histogram_labeled(
            "decide.latency_seconds",
            &[("method", "cma2c"), ("region_group", "3")],
            &[0.001, 0.01],
        );
        h.observe(0.0005);
        h.observe(0.005);
        let prom = render_prometheus(&tel.snapshot());
        assert_eq!(
            prom,
            "# TYPE decide_latency_seconds histogram\n\
             decide_latency_seconds_bucket{method=\"cma2c\",region_group=\"3\",le=\"0.001\"} 1\n\
             decide_latency_seconds_bucket{method=\"cma2c\",region_group=\"3\",le=\"0.01\"} 2\n\
             decide_latency_seconds_bucket{method=\"cma2c\",region_group=\"3\",le=\"+Inf\"} 2\n\
             decide_latency_seconds_sum{method=\"cma2c\",region_group=\"3\"} 0.0055\n\
             decide_latency_seconds_count{method=\"cma2c\",region_group=\"3\"} 2\n"
        );
    }

    #[test]
    fn prometheus_type_header_appears_once_per_labeled_family() {
        let tel = Telemetry::enabled();
        tel.histogram_labeled("m_seconds", &[("g", "0")], &[1.0])
            .observe(0.5);
        tel.histogram_labeled("m_seconds", &[("g", "1")], &[1.0])
            .observe(0.5);
        let prom = render_prometheus(&tel.snapshot());
        assert_eq!(prom.matches("# TYPE m_seconds histogram").count(), 1);
        assert!(prom.contains("m_seconds_bucket{g=\"0\",le=\"1\"} 1"));
        assert!(prom.contains("m_seconds_bucket{g=\"1\",le=\"1\"} 1"));
    }

    #[test]
    fn label_values_are_escaped_in_prometheus_output() {
        let tel = Telemetry::enabled();
        tel.histogram_labeled("esc", &[("k", "a\"b\\c\nd")], &[1.0])
            .observe(0.5);
        let prom = render_prometheus(&tel.snapshot());
        assert!(
            prom.contains("esc_bucket{k=\"a\\\"b\\\\c\\nd\",le=\"1\"} 1"),
            "got:\n{prom}"
        );
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_label_value("plain"), "plain");
    }

    #[test]
    fn labels_render_in_stable_key_order_regardless_of_registration() {
        let tel = Telemetry::enabled();
        tel.histogram_labeled("o", &[("zeta", "1"), ("alpha", "2")], &[1.0])
            .observe(0.5);
        let prom = render_prometheus(&tel.snapshot());
        assert!(
            prom.contains("o_bucket{alpha=\"2\",zeta=\"1\",le=\"1\"} 1"),
            "got:\n{prom}"
        );
    }

    #[test]
    fn percentile_gauges_cover_labeled_and_plain_histograms() {
        let tel = Telemetry::enabled();
        let plain = tel.histogram("p_seconds", &[1.0]);
        for i in 0..100 {
            plain.observe(0.001 * (i + 1) as f64);
        }
        tel.histogram_labeled("q_seconds", &[("method", "gt")], &[1.0])
            .observe(0.25);
        tel.histogram("empty_seconds", &[1.0]); // no observations → omitted
        let out = render_prometheus_percentiles(&tel.snapshot());
        assert!(out.contains("# TYPE p_seconds_quantile gauge"));
        for q in ["0.5", "0.9", "0.99", "0.999"] {
            assert!(out.contains(&format!("p_seconds_quantile{{quantile=\"{q}\"}}")));
        }
        assert!(out.contains("q_seconds_quantile{method=\"gt\",quantile=\"0.5\"}"));
        assert!(!out.contains("empty_seconds"));
        // p50 of 0.001..=0.100 is 0.050 — accurate to <1%, not a bucket bound.
        let p50_line = out
            .lines()
            .find(|l| l.starts_with("p_seconds_quantile{quantile=\"0.5\"}"))
            .unwrap();
        let p50: f64 = p50_line.rsplit_once(' ').unwrap().1.parse().unwrap();
        assert!((p50 - 0.05).abs() / 0.05 <= 0.01, "p50 {p50}");
    }

    #[test]
    fn empty_snapshot_renders_placeholders() {
        let empty = Snapshot::default();
        assert_eq!(render_text(&empty), "(no metrics recorded)\n");
        let json = render_json(&empty);
        assert_eq!(json, "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
        validate_json(&json).unwrap();
        assert_eq!(render_prometheus(&empty), "");
    }

    #[test]
    fn non_finite_gauges_become_json_null() {
        let tel = Telemetry::enabled();
        tel.gauge("bad").set(f64::NAN);
        let json = render_json(&tel.snapshot());
        assert!(json.contains("\"bad\":null"));
        validate_json(&json).unwrap();
    }

    #[test]
    fn prometheus_sanitizes_names() {
        assert_eq!(prometheus_name("sim.step_slot"), "sim_step_slot");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name("a-b c"), "a_b_c");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        validate_json(&json_string("a\"b\\c\nd\t\u{1}")).unwrap();
    }

    #[test]
    fn validator_accepts_valid_json() {
        for ok in [
            "null",
            "true",
            "-1.5e-3",
            "[]",
            "{}",
            "[1, 2, {\"a\": [null]}]",
            "{\"k\": \"v\\u00e9\"}",
            "  {\"a\":1}  ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_invalid_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "1.",
            "1e",
            "\"unterminated",
            "{} {}",
            "{'a':1}",
        ] {
            assert!(validate_json(bad).is_err(), "accepted: {bad}");
        }
    }
}
