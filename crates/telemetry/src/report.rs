//! Run reports: one JSON-serializable record per evaluated run, combining
//! the registry snapshot with the learning curve and final outcome.
//!
//! The bench binaries write one report per method as a JSONL line next to
//! their text output; diffing two such files across commits (same seed,
//! same scale) shows exactly which metric moved.

use crate::export::{json_f64, json_string, render_json};
use crate::metrics::Snapshot;
use std::io::{self, Write};

/// Everything worth keeping from one run: identity, learning curve, final
/// outcome numbers, and the full metric snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Method name ("FairMove", "DQN", …).
    pub name: String,
    /// Free-form run context (scale name, experiment, …).
    pub context: String,
    /// Per-episode average training reward (empty for static methods).
    pub training_curve: Vec<f64>,
    /// Mean per-taxi per-slot reward of the evaluation run.
    pub average_reward: f64,
    /// Final fleet mean profit efficiency, CNY/h.
    pub mean_pe: f64,
    /// Final profit fairness (PE variance; smaller is fairer).
    pub pf: f64,
    /// Completed trips in the evaluation run.
    pub trips: u64,
    /// Completed charge events in the evaluation run.
    pub charges: u64,
    /// Requests that expired unserved.
    pub expired_requests: u64,
    /// The telemetry registry at the end of the run.
    pub snapshot: Snapshot,
}

impl RunReport {
    /// Serializes the report as one line of JSON (no trailing newline).
    /// Non-finite numbers render as `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"name\":{},", json_string(&self.name)));
        out.push_str(&format!("\"context\":{},", json_string(&self.context)));
        out.push_str("\"training_curve\":[");
        for (i, r) in self.training_curve.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_f64(*r));
        }
        out.push_str("],");
        out.push_str(&format!(
            "\"average_reward\":{},",
            json_f64(self.average_reward)
        ));
        out.push_str(&format!("\"mean_pe\":{},", json_f64(self.mean_pe)));
        out.push_str(&format!("\"pf\":{},", json_f64(self.pf)));
        out.push_str(&format!("\"trips\":{},", self.trips));
        out.push_str(&format!("\"charges\":{},", self.charges));
        out.push_str(&format!("\"expired_requests\":{},", self.expired_requests));
        out.push_str(&format!("\"snapshot\":{}", render_json(&self.snapshot)));
        out.push('}');
        out
    }

    /// Writes `reports` as JSON Lines: one [`Self::to_json`] line each.
    pub fn write_jsonl<'a, W: Write>(
        reports: impl IntoIterator<Item = &'a RunReport>,
        w: &mut W,
    ) -> io::Result<()> {
        for report in reports {
            writeln!(w, "{}", report.to_json())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::validate_json;
    use crate::Telemetry;

    fn sample() -> RunReport {
        let tel = Telemetry::enabled();
        tel.counter("sim.trips").add(12);
        tel.histogram("sim.step_slot_seconds", &[0.01, 0.1])
            .observe(0.02);
        RunReport {
            name: "FairMove".into(),
            context: "test".into(),
            training_curve: vec![0.1, 0.3],
            average_reward: 0.42,
            mean_pe: 47.5,
            pf: 120.0,
            trips: 12,
            charges: 3,
            expired_requests: 1,
            snapshot: tel.snapshot(),
        }
    }

    #[test]
    fn report_json_is_valid_and_complete() {
        let json = sample().to_json();
        validate_json(&json).unwrap();
        for key in [
            "\"name\":\"FairMove\"",
            "\"training_curve\":[0.1,0.3]",
            "\"mean_pe\":47.5",
            "\"pf\":120",
            "\"snapshot\":",
            "sim.step_slot_seconds",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn jsonl_writes_one_valid_line_per_report() {
        let reports = [sample(), sample()];
        let mut buf = Vec::new();
        RunReport::write_jsonl(reports.iter(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            validate_json(line).unwrap();
        }
    }

    #[test]
    fn non_finite_outcome_fields_render_as_null() {
        let mut r = sample();
        r.average_reward = f64::NAN;
        let json = r.to_json();
        validate_json(&json).unwrap();
        assert!(json.contains("\"average_reward\":null"));
    }
}
