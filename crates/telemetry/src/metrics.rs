//! The typed metrics registry: counters, gauges, histograms.
//!
//! Metrics are created through a [`Telemetry`] handle and recorded through
//! cheap cloneable handles ([`Counter`], [`Gauge`], [`Histogram`]). All
//! recording is lock-free atomics; the registry mutex is taken only when a
//! metric is first registered or a [`Snapshot`] is taken.
//!
//! Histograms keep two stores per cell: the caller-chosen fixed buckets
//! (exporter-visible, layout pinned by first registration) and an
//! HDR-style log-linear array ([`crate::hdr`]) that quantile queries read,
//! so [`HistogramSnapshot::quantile`] is accurate to <1% instead of
//! rounding up to a bucket bound. Histograms may also carry labels
//! ([`Telemetry::histogram_labeled`]), e.g.
//! `decide.latency_seconds{method="cma2c",region_group="3"}`; each label
//! combination is its own cell, keyed by the canonical rendering of the
//! sorted label set.

use crate::hdr::{HdrCell, HdrSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Standard bucket layouts.
pub mod buckets {
    /// Wall-time buckets in seconds: 100 µs … 60 s, roughly geometric.
    /// Suits everything from a single matching pass to a full episode.
    pub const LATENCY_SECONDS: &[f64] = &[
        1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
        10.0, 30.0, 60.0,
    ];

    /// Small-count buckets (queue depths, retry counts, …).
    pub const COUNTS: &[f64] = &[0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0];
}

// ---------------------------------------------------------------------------
// Cells (shared storage)
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct CounterCell {
    value: AtomicU64,
}

/// A gauge stores an `f64` bit-cast into an `AtomicU64`.
#[derive(Debug, Default)]
struct GaugeCell {
    bits: AtomicU64,
}

#[derive(Debug)]
struct HistogramCell {
    /// Inclusive upper bounds, strictly increasing. An implicit overflow
    /// bucket (`+Inf`) follows the last bound.
    bounds: Vec<f64>,
    /// One slot per bound plus the overflow bucket.
    counts: Vec<AtomicU64>,
    /// Sum of observed values, `f64` bits (updated by CAS).
    sum_bits: AtomicU64,
    total: AtomicU64,
    /// Sorted `(key, value)` label pairs; empty for plain histograms.
    labels: Vec<(String, String)>,
    /// Log-linear storage backing accurate quantile queries.
    hdr: HdrCell,
}

impl HistogramCell {
    fn new(bounds: &[f64], labels: Vec<(String, String)>) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        HistogramCell {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0.0_f64.to_bits()),
            total: AtomicU64::new(0),
            labels,
            hdr: HdrCell::new(),
        }
    }

    fn observe(&self, value: f64) {
        // First bucket whose inclusive upper bound admits the value; the
        // overflow bucket takes everything past the last bound (and NaN).
        let idx = self.bounds.partition_point(|&b| b < value);
        let idx = if value.is_nan() {
            self.bounds.len()
        } else {
            idx
        };
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.hdr.record(value);
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// A monotonically increasing counter. Cloning shares the underlying cell;
/// a default-constructed (or disabled-registry) counter is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<CounterCell>>);

impl Counter {
    /// Increments by 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disabled counter).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.value.load(Ordering::Relaxed))
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<GaugeCell>>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.0 {
            cell.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for a disabled gauge).
    #[inline]
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.bits.load(Ordering::Relaxed)))
    }
}

/// A fixed-bucket histogram with inclusive upper bounds plus an overflow
/// (`+Inf`) bucket.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCell>>);

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: f64) {
        if let Some(cell) = &self.0 {
            cell.observe(value);
        }
    }

    /// Whether this handle records anywhere (false when telemetry is
    /// disabled). [`crate::Span`] uses this to skip clock reads entirely.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Total observations so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.total.load(Ordering::Relaxed))
    }
}

// ---------------------------------------------------------------------------
// Registry + Telemetry
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<CounterCell>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<GaugeCell>>>,
    /// Keyed by the full metric identity: the base name for plain
    /// histograms, `name{k="v",…}` (sorted labels) for labeled ones.
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
}

/// The canonical registry key for `name` + sorted `labels`:
/// `name{k="v",…}`, label values escaped like Prometheus label values.
fn metric_key(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut key = String::with_capacity(name.len() + 16 * labels.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => key.push_str("\\\\"),
                '"' => key.push_str("\\\""),
                '\n' => key.push_str("\\n"),
                c => key.push(c),
            }
        }
        key.push('"');
    }
    key.push('}');
    key
}

/// The telemetry context threaded through the stack. Cloning is cheap (an
/// `Arc` bump) and every clone records into the same registry.
///
/// [`Telemetry::default`] (= [`Telemetry::disabled`]) carries no registry:
/// all handles it creates are no-ops and snapshots are empty.
#[derive(Clone, Default)]
pub struct Telemetry(Option<Arc<Registry>>);

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A live telemetry context with a fresh registry.
    pub fn enabled() -> Self {
        Telemetry(Some(Arc::new(Registry::default())))
    }

    /// The inert context: every handle is a no-op.
    pub fn disabled() -> Self {
        Telemetry(None)
    }

    /// Whether this context records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Registers (or retrieves) the counter `name`.
    pub fn counter(&self, name: &'static str) -> Counter {
        Counter(self.0.as_ref().map(|r| {
            Arc::clone(
                r.counters
                    .lock()
                    .expect("telemetry registry poisoned")
                    .entry(name)
                    .or_default(),
            )
        }))
    }

    /// Registers (or retrieves) the gauge `name`.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        Gauge(self.0.as_ref().map(|r| {
            Arc::clone(
                r.gauges
                    .lock()
                    .expect("telemetry registry poisoned")
                    .entry(name)
                    .or_default(),
            )
        }))
    }

    /// Registers (or retrieves) the histogram `name` with the given
    /// inclusive upper `bounds` (strictly increasing; an overflow bucket is
    /// implicit). If the name already exists, the existing bucket layout
    /// wins — first registration fixes it.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        self.histogram_labeled(name, &[], bounds)
    }

    /// Registers (or retrieves) a labeled histogram: each distinct label
    /// combination is an independent cell. Labels are sorted by key, so
    /// registration order does not matter; the full identity renders as
    /// `name{k="v",…}` everywhere (snapshots, exporters). The base `name`
    /// should still end in `_seconds` for wall-time metrics so canonical
    /// diffs strip it.
    pub fn histogram_labeled(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        Histogram(self.0.as_ref().map(|r| {
            let mut labels: Vec<(String, String)> = labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect();
            labels.sort();
            let key = metric_key(name, &labels);
            Arc::clone(
                r.histograms
                    .lock()
                    .expect("telemetry registry poisoned")
                    .entry(key)
                    .or_insert_with(|| Arc::new(HistogramCell::new(bounds, labels))),
            )
        }))
    }

    /// Opens a wall-time span recording into the histogram `name` (bucket
    /// layout [`buckets::LATENCY_SECONDS`]) when the guard drops. By
    /// convention span names end in `_seconds`.
    pub fn span(&self, name: &'static str) -> crate::Span {
        crate::Span::new(self.histogram(name, buckets::LATENCY_SECONDS))
    }

    /// A point-in-time copy of every metric, names sorted. Empty when
    /// disabled.
    pub fn snapshot(&self) -> Snapshot {
        let Some(r) = &self.0 else {
            return Snapshot::default();
        };
        let counters = r
            .counters
            .lock()
            .expect("telemetry registry poisoned")
            .iter()
            .map(|(&name, cell)| (name.to_string(), cell.value.load(Ordering::Relaxed)))
            .collect();
        let gauges = r
            .gauges
            .lock()
            .expect("telemetry registry poisoned")
            .iter()
            .map(|(&name, cell)| {
                (
                    name.to_string(),
                    f64::from_bits(cell.bits.load(Ordering::Relaxed)),
                )
            })
            .collect();
        let histograms = r
            .histograms
            .lock()
            .expect("telemetry registry poisoned")
            .iter()
            .map(|(name, cell)| HistogramSnapshot {
                name: name.clone(),
                labels: cell.labels.clone(),
                bounds: cell.bounds.clone(),
                counts: cell
                    .counts
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .collect(),
                sum: f64::from_bits(cell.sum_bits.load(Ordering::Relaxed)),
                count: cell.total.load(Ordering::Relaxed),
                hdr: cell.hdr.snapshot(),
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Full metric identity: the base name, plus `{k="v",…}` when labeled.
    pub name: String,
    /// Sorted label pairs (empty for plain histograms).
    pub labels: Vec<(String, String)>,
    /// Inclusive upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; one entry per bound plus the trailing overflow
    /// bucket.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
    /// Log-linear storage for accurate quantiles (empty in hand-built
    /// fixtures; [`Self::quantile`] then falls back to bucket bounds).
    pub hdr: HdrSnapshot,
}

impl HistogramSnapshot {
    /// The metric name without the label suffix.
    pub fn base_name(&self) -> &str {
        self.name.split('{').next().unwrap_or(&self.name)
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `q`-quantile by the nearest-rank definition, read from the
    /// log-linear storage: accurate to <1% relative error for any value in
    /// `[2^-31, 2^13)` regardless of the fixed-bucket layout. Snapshots
    /// without log-linear data (hand-built fixtures) fall back to the
    /// historical estimate — the upper bound of the bucket holding the
    /// rank, `+Inf` in the overflow bucket. 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if let Some(v) = self.hdr.value_at_quantile(q) {
            return v;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            }
        }
        f64::INFINITY
    }
}

/// A point-in-time copy of a whole registry, every section sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, f64)>,
    /// Every histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Whether no metric was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The snapshot minus wall-clock timing histograms (span names end in
    /// `_seconds` by convention; labels are ignored, so
    /// `sim.match_seconds{region_group="0"}` is stripped too). Elapsed time
    /// legitimately varies between runs and thread counts; everything else
    /// must be bit-identical, so determinism diffs compare this canonical
    /// form.
    pub fn without_timings(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .filter(|h| !h.base_name().ends_with("_seconds"))
                .cloned()
                .collect(),
        }
    }

    /// Folds `other` into `self`: counters and histogram buckets/sums/counts
    /// add, gauges take `other`'s value (last-writer-wins, matching the live
    /// registry), and metrics present only in `other` are inserted. Name
    /// ordering stays sorted, so merging per-worker snapshots yields the
    /// same layout a shared registry would have produced.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            match self
                .counters
                .binary_search_by(|(n, _)| n.as_str().cmp(name))
            {
                Ok(i) => self.counters[i].1 += *v,
                Err(i) => self.counters.insert(i, (name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => self.gauges[i].1 = *v,
                Err(i) => self.gauges.insert(i, (name.clone(), *v)),
            }
        }
        for h in &other.histograms {
            match self
                .histograms
                .binary_search_by(|s| s.name.as_str().cmp(&h.name))
            {
                Ok(i) => {
                    let s = &mut self.histograms[i];
                    debug_assert_eq!(
                        s.bounds, h.bounds,
                        "histogram {} merged across bucket layouts",
                        h.name
                    );
                    for (a, b) in s.counts.iter_mut().zip(&h.counts) {
                        *a += *b;
                    }
                    s.sum += h.sum;
                    s.count += h.count;
                    s.hdr.merge(&h.hdr);
                }
                Err(i) => self.histograms.insert(i, h.clone()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn disabled_handles_are_noops() {
        let tel = Telemetry::disabled();
        let c = tel.counter("c");
        let g = tel.gauge("g");
        let h = tel.histogram("h", buckets::COUNTS);
        c.inc();
        g.set(3.0);
        h.observe(1.0);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        assert!(!h.is_enabled());
        assert!(tel.snapshot().is_empty());
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        let tel = Telemetry::enabled();
        let c = tel.counter("sim.trips");
        c.inc();
        c.add(4);
        let g = tel.gauge("dqn.epsilon");
        g.set(0.25);
        g.set(0.125);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("sim.trips"), Some(5));
        assert_eq!(snap.gauge("dqn.epsilon"), Some(0.125));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn same_name_shares_the_cell() {
        let tel = Telemetry::enabled();
        tel.counter("shared").add(2);
        tel.counter("shared").add(3);
        assert_eq!(tel.counter("shared").get(), 5);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
        let tel = Telemetry::enabled();
        let h = tel.histogram("h", &[1.0, 2.0, 5.0]);
        // Exactly on a bound → that bucket (inclusive upper bound).
        h.observe(1.0);
        h.observe(2.0);
        h.observe(5.0);
        // Strictly below the first bound → first bucket.
        h.observe(0.5);
        // Between bounds → the next bucket up.
        h.observe(1.5);
        // Past the last bound → overflow.
        h.observe(100.0);
        let snap = tel.snapshot();
        let hs = snap.histogram("h").unwrap();
        assert_eq!(hs.bounds, vec![1.0, 2.0, 5.0]);
        assert_eq!(hs.counts, vec![2, 2, 1, 1]);
        assert_eq!(hs.count, 6);
        assert!((hs.sum - 110.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_nan_goes_to_overflow() {
        let tel = Telemetry::enabled();
        let h = tel.histogram("h", &[1.0]);
        h.observe(f64::NAN);
        let snap = tel.snapshot();
        assert_eq!(snap.histogram("h").unwrap().counts, vec![0, 1]);
    }

    #[test]
    fn histogram_quantile_and_mean() {
        let tel = Telemetry::enabled();
        let h = tel.histogram("h", &[1.0, 2.0, 4.0]);
        for v in [0.5, 0.5, 1.5, 3.0] {
            h.observe(v);
        }
        let snap = tel.snapshot();
        let hs = snap.histogram("h").unwrap();
        assert!((hs.mean() - 1.375).abs() < 1e-12);
        // Quantiles come from the log-linear storage, not the bucket
        // bounds: p50 of [0.5, 0.5, 1.5, 3.0] is 0.5 (nearest-rank), within
        // 1/128 relative error — not the old "1.0" bound estimate.
        assert!((hs.quantile(0.5) - 0.5).abs() / 0.5 <= 0.01);
        assert!((hs.quantile(1.0) - 3.0).abs() / 3.0 <= 0.01);
        let empty = HistogramSnapshot {
            name: "e".into(),
            labels: vec![],
            bounds: vec![1.0],
            counts: vec![0, 0],
            sum: 0.0,
            count: 0,
            hdr: Default::default(),
        };
        assert_eq!(empty.quantile(0.5), 0.0);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn legacy_snapshots_without_hdr_data_fall_back_to_bucket_bounds() {
        // A hand-built snapshot (old baselines, fixtures) has no log-linear
        // buckets; quantile() must keep the historical bound-walk estimate.
        let hs = HistogramSnapshot {
            name: "h".into(),
            labels: vec![],
            bounds: vec![1.0, 2.0],
            counts: vec![2, 1, 1],
            sum: 5.0,
            count: 4,
            hdr: Default::default(),
        };
        assert_eq!(hs.quantile(0.5), 1.0);
        assert_eq!(hs.quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn fixed_bucket_quantile_bias_is_fixed_by_log_linear_storage() {
        // Regression for the >2x percentile bias: all observations land in
        // one wide fixed bucket (upper bound 1.0), but cluster near 0.012.
        // The old estimator returned the bound (1.0) — off by ~80x. The
        // log-linear path recovers the actual order statistics within 1%.
        let tel = Telemetry::enabled();
        let h = tel.histogram("skewed", &[1.0, 10.0]);
        let mut values: Vec<f64> = (0..1000)
            .map(|i| 0.01 + 0.00001 * (i as f64 % 997.0))
            .collect();
        for &v in &values {
            h.observe(v);
        }
        values.sort_by(f64::total_cmp);
        let snap = tel.snapshot();
        let hs = snap.histogram("skewed").unwrap();
        assert_eq!(hs.counts, vec![1000, 0, 0]); // all in one fixed bucket
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1);
            let exact = values[rank - 1];
            let got = hs.quantile(q);
            let rel = (got - exact).abs() / exact;
            assert!(rel <= 0.01, "q={q}: exact {exact}, got {got}, rel {rel}");
        }
    }

    #[test]
    fn labeled_histograms_get_distinct_cells_and_accurate_percentiles() {
        // The acceptance distribution: decide latency labeled by method and
        // region group, pinned synthetic samples, p50/p90/p99/p999 within
        // 1% relative error of the exact order statistics.
        let tel = Telemetry::enabled();
        let h = tel.histogram_labeled(
            "decide.latency",
            &[("method", "cma2c"), ("region_group", "3")],
            buckets::LATENCY_SECONDS,
        );
        let other = tel.histogram_labeled(
            "decide.latency",
            &[("method", "greedy"), ("region_group", "3")],
            buckets::LATENCY_SECONDS,
        );
        other.observe(1.0e6); // must not leak into the cma2c cell
        let mut values: Vec<f64> = (0..5000)
            .map(|i| {
                let x = (i as f64 * 0.7261) % 1.0;
                1e-4 * (x * 9.2).exp()
            })
            .collect();
        for &v in &values {
            h.observe(v);
        }
        values.sort_by(f64::total_cmp);
        let snap = tel.snapshot();
        let hs = snap
            .histogram("decide.latency{method=\"cma2c\",region_group=\"3\"}")
            .unwrap();
        assert_eq!(hs.base_name(), "decide.latency");
        assert_eq!(
            hs.labels,
            vec![
                ("method".to_string(), "cma2c".to_string()),
                ("region_group".to_string(), "3".to_string())
            ]
        );
        assert_eq!(hs.count, 5000);
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1);
            let exact = values[rank - 1];
            let got = hs.quantile(q);
            let rel = (got - exact).abs() / exact;
            assert!(rel <= 0.01, "q={q}: exact {exact}, got {got}, rel {rel}");
        }
    }

    #[test]
    fn label_order_in_registration_does_not_matter() {
        let tel = Telemetry::enabled();
        tel.histogram_labeled("m", &[("b", "2"), ("a", "1")], &[1.0])
            .observe(0.5);
        tel.histogram_labeled("m", &[("a", "1"), ("b", "2")], &[1.0])
            .observe(0.5);
        let snap = tel.snapshot();
        let hs = snap.histogram("m{a=\"1\",b=\"2\"}").unwrap();
        assert_eq!(hs.count, 2);
        assert_eq!(snap.histograms.len(), 1);
    }

    #[test]
    fn first_histogram_registration_fixes_the_layout() {
        let tel = Telemetry::enabled();
        tel.histogram("h", &[1.0, 2.0]).observe(1.5);
        // Re-registration with different bounds returns the existing cell.
        tel.histogram("h", &[10.0]).observe(1.5);
        let snap = tel.snapshot();
        let hs = snap.histogram("h").unwrap();
        assert_eq!(hs.bounds, vec![1.0, 2.0]);
        assert_eq!(hs.count, 2);
    }

    #[test]
    fn concurrent_counter_increments_from_multiple_threads() {
        let tel = Telemetry::enabled();
        let h = tel.histogram("work", buckets::COUNTS);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = tel.counter("hits");
                let h = h.clone();
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                        h.observe(1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = tel.snapshot();
        assert_eq!(snap.counter("hits"), Some(80_000));
        let hs = snap.histogram("work").unwrap();
        assert_eq!(hs.count, 80_000);
        assert!((hs.sum - 80_000.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_sections_are_name_sorted() {
        let tel = Telemetry::enabled();
        tel.counter("z").inc();
        tel.counter("a").inc();
        tel.gauge("m").set(1.0);
        tel.gauge("b").set(2.0);
        let snap = tel.snapshot();
        assert_eq!(snap.counters[0].0, "a");
        assert_eq!(snap.counters[1].0, "z");
        assert_eq!(snap.gauges[0].0, "b");
        assert_eq!(snap.gauges[1].0, "m");
    }

    #[test]
    fn clones_share_the_registry() {
        let tel = Telemetry::enabled();
        let clone = tel.clone();
        clone.counter("via_clone").add(7);
        assert_eq!(tel.snapshot().counter("via_clone"), Some(7));
    }

    #[test]
    fn without_timings_strips_only_seconds_histograms() {
        let tel = Telemetry::enabled();
        tel.counter("sim.trips").inc();
        tel.gauge("dqn.epsilon").set(0.5);
        tel.histogram("sim.step_slot_seconds", &[1.0]).observe(0.2);
        tel.histogram("sim.queue_depth", &[1.0]).observe(3.0);
        tel.histogram_labeled("sim.match_seconds", &[("region_group", "0")], &[1.0])
            .observe(0.1);
        let canon = tel.snapshot().without_timings();
        assert_eq!(canon.counter("sim.trips"), Some(1));
        assert_eq!(canon.gauge("dqn.epsilon"), Some(0.5));
        assert!(canon.histogram("sim.step_slot_seconds").is_none());
        // Labeled timing histograms are stripped by base name too.
        assert!(canon
            .histogram("sim.match_seconds{region_group=\"0\"}")
            .is_none());
        assert!(canon.histogram("sim.queue_depth").is_some());
    }

    #[test]
    fn merge_adds_counts_and_inserts_missing_metrics_sorted() {
        let a = Telemetry::enabled();
        a.counter("shared").add(2);
        a.counter("only_a").inc();
        a.gauge("g").set(1.0);
        a.histogram("h", &[1.0, 2.0]).observe(0.5);
        let b = Telemetry::enabled();
        b.counter("shared").add(3);
        b.counter("a_before").inc();
        b.gauge("g").set(9.0);
        b.histogram("h", &[1.0, 2.0]).observe(1.5);
        b.histogram("b_only", &[1.0]).observe(0.1);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("shared"), Some(5));
        assert_eq!(merged.counter("only_a"), Some(1));
        assert_eq!(merged.counter("a_before"), Some(1));
        // Gauges are last-writer-wins, like the live registry.
        assert_eq!(merged.gauge("g"), Some(9.0));
        let h = merged.histogram("h").unwrap();
        assert_eq!(h.counts, vec![1, 1, 0]);
        assert_eq!(h.count, 2);
        assert!((h.sum - 2.0).abs() < 1e-12);
        // Log-linear buckets merged too: both observations are queryable.
        assert_eq!(h.hdr.count(), 2);
        assert!((h.quantile(1.0) - 1.5).abs() / 1.5 <= 0.01);
        assert!(merged.histogram("b_only").is_some());
        // Sections stay name-sorted after inserts, matching what one shared
        // registry would have snapshotted.
        let names: Vec<&str> = merged.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a_before", "only_a", "shared"]);
        let hist_names: Vec<&str> = merged.histograms.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(hist_names, vec!["b_only", "h"]);
    }
}
