//! Hierarchical span tracing with lock-free per-thread ring buffers.
//!
//! This is the deep-tracing layer beneath the metrics registry: where a
//! [`crate::Histogram`] aggregates durations, a trace span remembers *which*
//! invocation took how long and *under which parent*, so a single slot can
//! be unfolded into its tree — `step_slot → observe → decide (wave k) →
//! matmul → commit` — and exported as Chrome trace-event JSON that loads
//! directly in Perfetto / `chrome://tracing`.
//!
//! ## Design
//!
//! * **Global on/off switch.** Tracing is process-global ([`set_enabled`]).
//!   The [`crate::trace_span!`] macro checks [`is_enabled`] *before* doing
//!   anything else, so a disabled span is one relaxed atomic load and a
//!   `None` guard — instrumentation can stay in the hot path permanently.
//! * **Interned names.** Span names are `&'static str`s interned once per
//!   call site into a [`SpanName`] (a small integer). The per-name duration
//!   aggregates ([`aggregate`]) are plain static atomic arrays indexed by
//!   it, so closing a span is a handful of relaxed `fetch_add`s — no maps,
//!   no locks, no allocation.
//! * **Per-thread rings.** Each thread lazily registers one [`ThreadTrace`]
//!   holding a fixed ring of [`RING_EVENTS`] completed events plus a small
//!   open-span stack. Only the owning thread writes; the ring head is
//!   published with `Release` after the event fields, so readers
//!   ([`collect_events`], the sampling profiler) never observe a
//!   half-written event below the head. Registration is the only
//!   allocation, and it happens on a thread's *first* span — inside any
//!   warmup period.
//! * **Span identity.** Every span gets an id `(tid << 40) | seq` and
//!   records its parent's id (the enclosing open span on the same thread),
//!   which is what lets the exporter reconstruct the tree.
//! * **Sampling profiler.** [`start_profiler`] spawns a watcher thread that
//!   snapshots every registered thread's open-span stack at a fixed rate
//!   and folds the samples into `a;b;c count` lines (the folded-stacks
//!   format flamegraph tools consume). No signals, no unwinding: the stack
//!   arrays are atomics the watcher simply reads.
//!
//! Tracing never touches simulation state or RNG, so enabling it must not
//! change what a run computes; the sim crate pins that with a
//! bit-identical-ledger test.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Completed events kept per thread (oldest overwritten on wrap).
pub const RING_EVENTS: usize = 8192;
/// Maximum simultaneously open spans per thread; deeper nesting saturates.
pub const MAX_DEPTH: usize = 32;
/// Maximum distinct interned span names.
pub const MAX_NAMES: usize = 64;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether spans currently record. Checked first by [`crate::trace_span!`].
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on or off process-wide. Spans opened while enabled still
/// record when dropped after a disable.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Name interning
// ---------------------------------------------------------------------------

/// An interned span name: an index into the global name table, cheap to
/// copy and to use as an aggregate key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanName(u16);

static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// Interns `name`, returning the existing [`SpanName`] if already present.
///
/// # Panics
/// When more than [`MAX_NAMES`] distinct names are interned — span names
/// are call-site constants, so hitting the cap is a programming error.
pub fn intern(name: &'static str) -> SpanName {
    let mut names = NAMES.lock().expect("trace name table poisoned");
    if let Some(i) = names.iter().position(|&n| n == name) {
        return SpanName(i as u16);
    }
    assert!(
        names.len() < MAX_NAMES,
        "too many distinct span names (max {MAX_NAMES})"
    );
    names.push(name);
    SpanName((names.len() - 1) as u16)
}

/// The string for an interned name (`"?"` if out of range).
pub fn name_str(name: SpanName) -> &'static str {
    NAMES
        .lock()
        .expect("trace name table poisoned")
        .get(name.0 as usize)
        .copied()
        .unwrap_or("?")
}

fn name_table() -> Vec<&'static str> {
    NAMES.lock().expect("trace name table poisoned").clone()
}

// ---------------------------------------------------------------------------
// Per-name aggregates
// ---------------------------------------------------------------------------

static AGG_NS: [AtomicU64; MAX_NAMES] = [const { AtomicU64::new(0) }; MAX_NAMES];
static AGG_COUNT: [AtomicU64; MAX_NAMES] = [const { AtomicU64::new(0) }; MAX_NAMES];

/// Total nanoseconds and event count accumulated for `name` since the last
/// [`reset_aggregates`]. Survives ring wrap-around, so benches use it for
/// per-phase attribution over arbitrarily long runs.
pub fn aggregate(name: SpanName) -> (u64, u64) {
    let i = name.0 as usize;
    (
        AGG_NS[i].load(Ordering::Relaxed),
        AGG_COUNT[i].load(Ordering::Relaxed),
    )
}

/// Zeroes every per-name aggregate (e.g. after bench warmup).
pub fn reset_aggregates() {
    for i in 0..MAX_NAMES {
        AGG_NS[i].store(0, Ordering::Relaxed);
        AGG_COUNT[i].store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the first trace clock read in this process.
#[inline]
pub fn now_ns() -> u64 {
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Per-thread state
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct EventCell {
    name: AtomicU32,
    depth: AtomicU32,
    id: AtomicU64,
    parent: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
    arg: AtomicU64,
}

impl EventCell {
    const fn new() -> Self {
        EventCell {
            name: AtomicU32::new(0),
            depth: AtomicU32::new(0),
            id: AtomicU64::new(0),
            parent: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
            arg: AtomicU64::new(0),
        }
    }
}

/// One thread's trace state: a single-writer ring of completed events plus
/// the open-span stack the profiler samples. Registered globally on the
/// thread's first span and kept alive (for export) after the thread exits.
struct ThreadTrace {
    tid: u32,
    ring: Box<[EventCell]>,
    /// Total events ever written; `head % RING_EVENTS` is the next slot.
    /// Stored with `Release` *after* the event fields so readers taking
    /// `Acquire` see complete events below it.
    head: AtomicU64,
    stack_names: [AtomicU32; MAX_DEPTH],
    stack_ids: [AtomicU64; MAX_DEPTH],
    /// Open-span count, published with `Release` so the profiler's
    /// `Acquire` load sees the stack entries below it.
    depth: AtomicU32,
    /// Per-thread span sequence (owner-only).
    seq: AtomicU64,
}

impl ThreadTrace {
    fn new(tid: u32) -> Self {
        ThreadTrace {
            tid,
            ring: (0..RING_EVENTS).map(|_| EventCell::new()).collect(),
            head: AtomicU64::new(0),
            stack_names: [const { AtomicU32::new(0) }; MAX_DEPTH],
            stack_ids: [const { AtomicU64::new(0) }; MAX_DEPTH],
            depth: AtomicU32::new(0),
            seq: AtomicU64::new(0),
        }
    }
}

static REGISTRY: Mutex<Vec<Arc<ThreadTrace>>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static THREAD_TRACE: OnceLock<Arc<ThreadTrace>> = const { OnceLock::new() };
}

fn register_thread() -> Arc<ThreadTrace> {
    let tt = Arc::new(ThreadTrace::new(NEXT_TID.fetch_add(1, Ordering::Relaxed)));
    REGISTRY
        .lock()
        .expect("trace registry poisoned")
        .push(Arc::clone(&tt));
    tt
}

fn with_thread<R>(f: impl FnOnce(&ThreadTrace) -> R) -> R {
    THREAD_TRACE.with(|cell| f(cell.get_or_init(register_thread)))
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// An open trace span; records a completed event into the owning thread's
/// ring (and the per-name aggregates) when dropped. Create through
/// [`crate::trace_span!`], which handles the enabled check and name
/// interning. Not `Send`: a span must close on the thread that opened it.
#[derive(Debug)]
pub struct TraceSpan {
    name: SpanName,
    id: u64,
    parent: u64,
    depth: u32,
    start_ns: u64,
    arg: u64,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl TraceSpan {
    /// Opens a span. Call only when [`is_enabled`] — the macro guards this.
    pub fn new(name: SpanName) -> TraceSpan {
        Self::with_arg(name, 0)
    }

    /// Opens a span carrying one `u64` argument (wave index, row count, …)
    /// shown under `args` in the Chrome trace.
    pub fn with_arg(name: SpanName, arg: u64) -> TraceSpan {
        let start_ns = now_ns();
        with_thread(|tt| {
            let seq = tt.seq.load(Ordering::Relaxed);
            tt.seq.store(seq + 1, Ordering::Relaxed);
            let id = ((tt.tid as u64) << 40) | (seq & ((1 << 40) - 1));
            let depth = tt.depth.load(Ordering::Relaxed);
            let parent = if depth == 0 {
                0
            } else {
                let top = (depth as usize - 1).min(MAX_DEPTH - 1);
                tt.stack_ids[top].load(Ordering::Relaxed)
            };
            if (depth as usize) < MAX_DEPTH {
                tt.stack_names[depth as usize].store(name.0 as u32, Ordering::Relaxed);
                tt.stack_ids[depth as usize].store(id, Ordering::Relaxed);
            }
            tt.depth.store(depth + 1, Ordering::Release);
            TraceSpan {
                name,
                id,
                parent,
                depth,
                start_ns,
                arg,
                _not_send: std::marker::PhantomData,
            }
        })
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        with_thread(|tt| {
            let depth = tt.depth.load(Ordering::Relaxed);
            tt.depth.store(depth.saturating_sub(1), Ordering::Release);
            let head = tt.head.load(Ordering::Relaxed);
            let cell = &tt.ring[(head % RING_EVENTS as u64) as usize];
            cell.name.store(self.name.0 as u32, Ordering::Relaxed);
            cell.depth.store(self.depth, Ordering::Relaxed);
            cell.id.store(self.id, Ordering::Relaxed);
            cell.parent.store(self.parent, Ordering::Relaxed);
            cell.start_ns.store(self.start_ns, Ordering::Relaxed);
            cell.dur_ns.store(dur_ns, Ordering::Relaxed);
            cell.arg.store(self.arg, Ordering::Relaxed);
            tt.head.store(head + 1, Ordering::Release);
        });
        let i = self.name.0 as usize;
        AGG_NS[i].fetch_add(dur_ns, Ordering::Relaxed);
        AGG_COUNT[i].fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Event collection + Chrome trace export
// ---------------------------------------------------------------------------

/// One completed span copied out of a ring.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Interned span name, resolved.
    pub name: &'static str,
    /// Owning thread's trace id (not the OS tid).
    pub tid: u32,
    /// Span id: `(tid << 40) | seq`.
    pub id: u64,
    /// Enclosing span's id on the same thread, 0 at the root.
    pub parent: u64,
    /// Nesting depth at open (0 = root).
    pub depth: u32,
    /// Open time, [`now_ns`] clock.
    pub start_ns: u64,
    /// Wall duration.
    pub dur_ns: u64,
    /// Caller-supplied argument (wave index, row count, …).
    pub arg: u64,
}

/// Copies every completed event currently held in the per-thread rings,
/// sorted by start time. At most [`RING_EVENTS`] per thread survive —
/// older events are overwritten on wrap (per-name totals live on in
/// [`aggregate`]).
pub fn collect_events() -> Vec<TraceEvent> {
    let names = name_table();
    let threads: Vec<Arc<ThreadTrace>> = REGISTRY
        .lock()
        .expect("trace registry poisoned")
        .iter()
        .map(Arc::clone)
        .collect();
    let mut events = Vec::new();
    for tt in &threads {
        let head = tt.head.load(Ordering::Acquire);
        let available = head.min(RING_EVENTS as u64);
        for back in 0..available {
            let slot = ((head - available + back) % RING_EVENTS as u64) as usize;
            let cell = &tt.ring[slot];
            events.push(TraceEvent {
                name: names
                    .get(cell.name.load(Ordering::Relaxed) as usize)
                    .copied()
                    .unwrap_or("?"),
                tid: tt.tid,
                id: cell.id.load(Ordering::Relaxed),
                parent: cell.parent.load(Ordering::Relaxed),
                depth: cell.depth.load(Ordering::Relaxed),
                start_ns: cell.start_ns.load(Ordering::Relaxed),
                dur_ns: cell.dur_ns.load(Ordering::Relaxed),
                arg: cell.arg.load(Ordering::Relaxed),
            });
        }
    }
    events.sort_by_key(|e| (e.start_ns, e.tid, e.id));
    events
}

/// Clears every ring and all per-name aggregates. Call only while no spans
/// are being recorded (concurrent writers would interleave with the reset).
pub fn reset() {
    for tt in REGISTRY.lock().expect("trace registry poisoned").iter() {
        tt.head.store(0, Ordering::Release);
    }
    reset_aggregates();
}

/// Renders events as Chrome trace-event JSON (the `traceEvents` array
/// form): one complete (`"ph":"X"`) event per span with microsecond
/// timestamps, loadable in Perfetto or `chrome://tracing`. Span id, parent
/// id, and the argument ride along under `"args"`.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(128 * events.len() + 32);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"fairmove\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{:.3},\"dur\":{:.3},\
             \"args\":{{\"id\":{},\"parent\":{},\"arg\":{}}}}}",
            e.name,
            e.tid,
            e.start_ns as f64 / 1000.0,
            e.dur_ns as f64 / 1000.0,
            e.id,
            e.parent,
            e.arg,
        ));
    }
    out.push_str("]}");
    out
}

/// Validates Chrome trace-event JSON structurally — hand-rolled, no
/// dependencies: the document must be valid JSON (via
/// [`crate::export::validate_json`]), carry a `traceEvents` array, and
/// every event object must contain the keys Perfetto needs for a complete
/// event (`name`, `ph`, `pid`, `tid`, `ts`, `dur`). Returns the event
/// count.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    crate::export::validate_json(json)?;
    let body = json
        .split_once("\"traceEvents\"")
        .ok_or("missing \"traceEvents\" key")?
        .1;
    let start = body.find('[').ok_or("traceEvents is not an array")?;
    // Walk the array, slicing out each top-level `{…}` event object.
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut obj_start = None;
    let mut count = 0usize;
    for (i, c) in body[start..].char_indices() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    obj_start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or("unbalanced braces in traceEvents")?;
                if depth == 0 {
                    let obj = &body[start + obj_start.ok_or("brace underflow")?..start + i + 1];
                    for key in [
                        "\"name\"", "\"ph\"", "\"pid\"", "\"tid\"", "\"ts\"", "\"dur\"",
                    ] {
                        if !obj.contains(key) {
                            return Err(format!("event {count} missing {key}: {obj}"));
                        }
                    }
                    count += 1;
                    obj_start = None;
                }
            }
            ']' if depth == 0 => return Ok(count),
            _ => {}
        }
    }
    Err("traceEvents array never closed".into())
}

// ---------------------------------------------------------------------------
// Sampling profiler
// ---------------------------------------------------------------------------

/// A running sampling profiler; [`Profiler::stop`] joins the watcher and
/// returns the folded stacks.
pub struct Profiler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<BTreeMap<String, u64>>>,
}

/// Starts a watcher thread sampling every registered thread's open-span
/// stack `hz` times per second. Signal-free: the stacks are atomics the
/// watcher reads directly, so sampled threads pay nothing.
pub fn start_profiler(hz: u32) -> Profiler {
    let period = Duration::from_nanos(1_000_000_000 / u64::from(hz.max(1)));
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("fairmove-profiler".into())
        .spawn(move || {
            let mut folded: BTreeMap<String, u64> = BTreeMap::new();
            let mut stack = String::new();
            while !stop_flag.load(Ordering::Relaxed) {
                let names = name_table();
                let threads: Vec<Arc<ThreadTrace>> = REGISTRY
                    .lock()
                    .expect("trace registry poisoned")
                    .iter()
                    .map(Arc::clone)
                    .collect();
                for tt in &threads {
                    let depth = (tt.depth.load(Ordering::Acquire) as usize).min(MAX_DEPTH);
                    if depth == 0 {
                        continue;
                    }
                    stack.clear();
                    for level in 0..depth {
                        if level > 0 {
                            stack.push(';');
                        }
                        let n = tt.stack_names[level].load(Ordering::Relaxed) as usize;
                        stack.push_str(names.get(n).copied().unwrap_or("?"));
                    }
                    *folded.entry(stack.clone()).or_insert(0) += 1;
                }
                std::thread::sleep(period);
            }
            folded
        })
        .expect("spawn profiler thread");
    Profiler {
        stop,
        handle: Some(handle),
    }
}

impl Profiler {
    /// Stops sampling and returns the folded-stacks text: one
    /// `root;child;leaf count` line per distinct stack, sorted — the format
    /// `flamegraph.pl` and speedscope consume.
    pub fn stop(mut self) -> String {
        self.stop.store(true, Ordering::Relaxed);
        let folded = self
            .handle
            .take()
            .expect("profiler already stopped")
            .join()
            .expect("profiler thread panicked");
        let mut out = String::new();
        for (stack, count) in folded {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }
}

impl Drop for Profiler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state is process-global; tests that toggle it serialize here.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn interning_is_idempotent_and_stable() {
        let a = intern("test.intern.a");
        let b = intern("test.intern.b");
        assert_ne!(a, b);
        assert_eq!(intern("test.intern.a"), a);
        assert_eq!(name_str(a), "test.intern.a");
    }

    #[test]
    fn nested_spans_link_parents_and_depths() {
        let _g = lock();
        set_enabled(true);
        reset();
        let outer_name = intern("test.outer");
        let inner_name = intern("test.inner");
        {
            let _outer = TraceSpan::new(outer_name);
            let _inner = TraceSpan::with_arg(inner_name, 7);
        }
        set_enabled(false);
        let events = collect_events();
        let outer = events.iter().find(|e| e.name == "test.outer").unwrap();
        let inner = events.iter().find(|e| e.name == "test.inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(inner.arg, 7);
        // The child closes before (or when) the parent does.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
    }

    #[test]
    fn aggregates_accumulate_and_reset() {
        let _g = lock();
        set_enabled(true);
        reset();
        let name = intern("test.agg");
        for _ in 0..5 {
            let _s = TraceSpan::new(name);
        }
        set_enabled(false);
        let (ns, count) = aggregate(name);
        assert_eq!(count, 5);
        assert!(ns > 0, "durations should be nonzero");
        reset_aggregates();
        assert_eq!(aggregate(name), (0, 0));
    }

    #[test]
    fn chrome_trace_round_trips_through_the_validator() {
        let _g = lock();
        set_enabled(true);
        reset();
        let outer = intern("test.chrome.outer");
        let inner = intern("test.chrome.inner");
        {
            let _o = TraceSpan::new(outer);
            let _i = TraceSpan::with_arg(inner, 3);
        }
        set_enabled(false);
        let events = collect_events();
        let json = chrome_trace_json(&events);
        let n = validate_chrome_trace(&json).expect("trace must validate");
        assert_eq!(n, events.len());
        assert!(json.contains("\"name\":\"test.chrome.inner\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"cat\":\"fairmove\""));
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("{\"traceEvents\":[").is_err());
        assert!(validate_chrome_trace("{\"events\":[]}").is_err());
        // Valid JSON, but the event lacks required keys.
        let missing = "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\"}]}";
        assert!(validate_chrome_trace(missing)
            .unwrap_err()
            .contains("missing"));
        assert_eq!(validate_chrome_trace("{\"traceEvents\":[]}"), Ok(0));
    }

    #[test]
    fn ring_keeps_only_the_newest_events_but_aggregates_survive() {
        let _g = lock();
        set_enabled(true);
        reset();
        let name = intern("test.wrap");
        let total = RING_EVENTS + 50;
        for _ in 0..total {
            let _s = TraceSpan::new(name);
        }
        set_enabled(false);
        let ours: Vec<_> = collect_events()
            .into_iter()
            .filter(|e| e.name == "test.wrap")
            .collect();
        assert_eq!(ours.len(), RING_EVENTS);
        let (_, count) = aggregate(name);
        assert_eq!(count as usize, total);
    }

    #[test]
    fn profiler_folds_open_span_stacks() {
        let _g = lock();
        set_enabled(true);
        reset();
        let outer = intern("test.prof.outer");
        let inner = intern("test.prof.inner");
        let profiler = start_profiler(2000);
        {
            let _o = TraceSpan::new(outer);
            let _i = TraceSpan::new(inner);
            std::thread::sleep(Duration::from_millis(30));
        }
        set_enabled(false);
        let folded = profiler.stop();
        assert!(
            folded
                .lines()
                .any(|l| l.starts_with("test.prof.outer;test.prof.inner ")),
            "expected folded stack, got:\n{folded}"
        );
        for line in folded.lines() {
            let (_, count) = line.rsplit_once(' ').expect("count suffix");
            count.parse::<u64>().expect("count parses");
        }
    }

    #[test]
    fn disabled_tracing_records_nothing_new() {
        let _g = lock();
        set_enabled(false);
        reset();
        assert!(!is_enabled());
        // The macro-level gate: callers check is_enabled() and skip span
        // construction entirely, so nothing lands in the rings.
        assert_eq!(collect_events(), vec![]);
    }
}
