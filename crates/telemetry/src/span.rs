//! Wall-time spans: RAII guards that record elapsed seconds into a
//! histogram when dropped.

use crate::metrics::Histogram;
use std::time::Instant;

/// A timing guard created by [`crate::Telemetry::span`] or the
/// [`crate::span!`] macro. Records the elapsed wall time (seconds) into its
/// histogram on drop.
///
/// When telemetry is disabled the guard holds no histogram and never reads
/// the clock, so an instrumented hot path pays only a branch.
#[derive(Debug)]
pub struct Span {
    histogram: Histogram,
    started: Option<Instant>,
}

impl Span {
    /// A span recording into `histogram` (inert if the histogram is).
    pub fn new(histogram: Histogram) -> Self {
        let started = histogram.is_enabled().then(Instant::now);
        Span { histogram, started }
    }

    /// Ends the span early, recording now instead of at scope exit.
    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if let Some(started) = self.started.take() {
            self.histogram.observe(started.elapsed().as_secs_f64());
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn span_records_one_observation_on_drop() {
        let tel = Telemetry::enabled();
        {
            let _span = tel.span("op_seconds");
        }
        let snap = tel.snapshot();
        let h = snap.histogram("op_seconds").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.sum >= 0.0);
    }

    #[test]
    fn span_macro_expands_to_method_call() {
        let tel = Telemetry::enabled();
        {
            let _span = crate::span!(tel, "macro_seconds");
        }
        assert_eq!(tel.snapshot().histogram("macro_seconds").unwrap().count, 1);
    }

    #[test]
    fn finish_records_once() {
        let tel = Telemetry::enabled();
        let span = tel.span("early_seconds");
        span.finish();
        assert_eq!(tel.snapshot().histogram("early_seconds").unwrap().count, 1);
    }

    #[test]
    fn disabled_span_is_inert() {
        let tel = Telemetry::disabled();
        {
            let _span = tel.span("nothing_seconds");
        }
        assert!(tel.snapshot().is_empty());
    }
}
