//! HDR-style log-linear histogram storage with bounded relative error.
//!
//! Every [`crate::Histogram`] records each observation twice: into its
//! caller-visible fixed buckets (kept for exporter compatibility and
//! first-registration layout pinning) and into one of these log-linear
//! arrays. The array is what quantile queries read: 64 linear sub-buckets
//! per power of two give a worst-case relative half-width of
//! `1/128 ≈ 0.78%` for any value in range, so p50/p90/p99/p999 come back
//! within 1% of the exact order statistic regardless of how skewed the
//! distribution is — the fixed buckets alone could be off by >2× on a
//! latency tail that lands inside one wide bucket.
//!
//! Layout: bucket 0 catches underflow (zero, negatives, and anything below
//! [`MIN_VALUE`]); then [`OCTAVES`]`×64` buckets cover
//! `[2^MIN_EXP, 2^MAX_EXP)`; the last bucket catches overflow and NaN
//! (matching the fixed-bucket convention). The bucket index of a normal
//! `f64` in range is read straight off its bit pattern — exponent bits
//! select the octave, the top [`SUB_BITS`] mantissa bits the sub-bucket —
//! so recording is a shift, a mask, and one relaxed `fetch_add`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Mantissa bits used for the linear sub-bucket: 2^6 = 64 per octave.
const SUB_BITS: u32 = 6;
/// Sub-buckets per octave.
const SUBS: usize = 1 << SUB_BITS;
/// Smallest representable octave: 2^-31 ≈ 0.47 ns (as seconds).
const MIN_EXP: i32 = -31;
/// One past the largest octave: 2^13 = 8192 (> 2 h as seconds).
const MAX_EXP: i32 = 13;
/// Octaves covered by the main array.
const OCTAVES: usize = (MAX_EXP - MIN_EXP) as usize;
/// Smallest in-range value.
const MIN_VALUE: f64 = 4.656612873077393e-10; // 2^-31
/// One past the largest in-range value.
const MAX_VALUE: f64 = 8192.0; // 2^13
/// Main-array buckets (underflow and overflow cells are separate).
const MAIN: usize = OCTAVES * SUBS;
/// Total cells: underflow + main + overflow.
pub(crate) const CELLS: usize = MAIN + 2;

/// Index of the cell `value` lands in.
#[inline]
pub(crate) fn bucket_index(value: f64) -> usize {
    if value.is_nan() || value >= MAX_VALUE {
        CELLS - 1
    } else if value < MIN_VALUE {
        // Zero, negatives, and sub-range positives; NaN fails both
        // comparisons above but is routed to overflow first.
        0
    } else {
        let bits = value.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        1 + (exp - MIN_EXP) as usize * SUBS + sub
    }
}

/// The representative value reported for cell `index`: the arithmetic
/// midpoint of the bucket's range (0.0 for underflow, +∞ for overflow).
pub(crate) fn bucket_value(index: usize) -> f64 {
    if index == 0 {
        return 0.0;
    }
    if index >= CELLS - 1 {
        return f64::INFINITY;
    }
    let i = index - 1;
    let exp = MIN_EXP + (i / SUBS) as i32;
    let sub = (i % SUBS) as f64;
    let octave = (exp as f64).exp2();
    octave * (1.0 + (sub + 0.5) / SUBS as f64)
}

/// Lock-free log-linear storage behind every histogram cell.
#[derive(Debug)]
pub(crate) struct HdrCell {
    counts: Box<[AtomicU64]>,
}

impl HdrCell {
    pub(crate) fn new() -> Self {
        HdrCell {
            counts: (0..CELLS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one observation (one relaxed `fetch_add`).
    #[inline]
    pub(crate) fn record(&self, value: f64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Sparse copy of the non-empty buckets, index-sorted.
    pub(crate) fn snapshot(&self) -> HdrSnapshot {
        let buckets = self
            .counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        HdrSnapshot { buckets }
    }
}

/// A point-in-time sparse copy of one [`HdrCell`]: `(bucket index, count)`
/// pairs sorted by index. Empty for snapshots that predate the log-linear
/// storage (hand-built fixtures, old baselines) — quantile queries then
/// fall back to the fixed-bucket walk.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HdrSnapshot {
    /// Non-empty `(bucket index, count)` pairs, index-sorted.
    pub buckets: Vec<(u32, u64)>,
}

impl HdrSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|&(_, n)| n).sum()
    }

    /// Whether any observation was recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// The value at quantile `q` (by the nearest-rank definition): the
    /// representative value of the bucket holding the `ceil(q·count)`-th
    /// smallest observation. `None` when empty.
    pub fn value_at_quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for &(index, n) in &self.buckets {
            cumulative += n;
            if cumulative >= rank {
                return Some(bucket_value(index as usize));
            }
        }
        Some(bucket_value(CELLS - 1))
    }

    /// Folds `other`'s buckets into `self`, keeping the index order.
    pub fn merge(&mut self, other: &HdrSnapshot) {
        for &(index, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&index, |&(i, _)| i) {
                Ok(at) => self.buckets[at].1 += n,
                Err(at) => self.buckets.insert(at, (index, n)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_round_trips_within_relative_error_bound() {
        // Sweep values across the whole range: the representative value of
        // the bucket a value lands in must be within 1/128 of the value.
        let mut v = MIN_VALUE;
        while v < MAX_VALUE {
            let mid = bucket_value(bucket_index(v));
            let rel = (mid - v).abs() / v;
            assert!(
                rel <= 1.0 / 128.0 + 1e-12,
                "value {v}: mid {mid}, rel {rel}"
            );
            v *= 1.037; // irrational-ish step so bucket edges get sampled
        }
    }

    #[test]
    fn out_of_range_values_go_to_the_edge_cells() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(MIN_VALUE / 2.0), 0);
        assert_eq!(bucket_index(MAX_VALUE), CELLS - 1);
        assert_eq!(bucket_index(f64::INFINITY), CELLS - 1);
        assert_eq!(bucket_index(f64::NAN), CELLS - 1);
        assert_eq!(bucket_value(0), 0.0);
        assert!(bucket_value(CELLS - 1).is_infinite());
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two_times_linear_steps() {
        // 1.0 is the first sub-bucket of octave 0.
        let i = bucket_index(1.0);
        assert_eq!(i, 1 + (0 - MIN_EXP) as usize * SUBS);
        // The representative sits half a sub-bucket up.
        assert!((bucket_value(i) - (1.0 + 0.5 / 64.0)).abs() < 1e-12);
        // Just below 1.0 lands one bucket earlier.
        assert_eq!(bucket_index(1.0 - 1e-9), i - 1);
    }

    #[test]
    fn quantiles_track_exact_order_statistics_within_one_percent() {
        let cell = HdrCell::new();
        // A skewed latency-like distribution: deterministic lognormal-ish
        // samples spanning 4 decades.
        let mut values: Vec<f64> = (0..10_000)
            .map(|i| {
                let x = (i as f64 * 0.7261) % 1.0;
                1e-4 * (x * 9.2).exp() // 1e-4 .. ~1.0
            })
            .collect();
        for &v in &values {
            cell.record(v);
        }
        values.sort_by(f64::total_cmp);
        let snap = cell.snapshot();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1);
            let exact = values[rank - 1];
            let got = snap.value_at_quantile(q).unwrap();
            let rel = (got - exact).abs() / exact;
            assert!(rel <= 0.01, "q={q}: exact {exact}, got {got}, rel {rel}");
        }
    }

    #[test]
    fn merge_adds_counts_and_inserts_missing_buckets() {
        let a = HdrCell::new();
        a.record(0.5);
        a.record(2.0);
        let b = HdrCell::new();
        b.record(0.5);
        b.record(8.0);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 4);
        let idx = bucket_index(0.5) as u32;
        let shared = m.buckets.iter().find(|&&(i, _)| i == idx).unwrap();
        assert_eq!(shared.1, 2);
        // Index order is preserved after inserts.
        assert!(m.buckets.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn empty_snapshot_has_no_quantiles() {
        let snap = HdrSnapshot::default();
        assert!(snap.is_empty());
        assert_eq!(snap.value_at_quantile(0.5), None);
        assert_eq!(snap.count(), 0);
    }
}
