//! Deterministic fan-out over OS threads, with no dependencies.
//!
//! The FairMove workloads that dominate walltime — (method × seed ×
//! fault-scenario) training/evaluation runs, and the row loops of the dense
//! matmuls inside them — are embarrassingly parallel *and* must stay
//! bit-identical to the serial path: every result file, ledger, and
//! run-report line is compared byte-for-byte in tests. This crate provides
//! the two primitives that make that combination easy:
//!
//! * [`ordered_map`] — fan a batch of independent jobs across worker
//!   threads, collecting results **in submission order**. Workers race for
//!   *which* job to run next, never for *where* its result lands, so output
//!   order is a function of the input alone.
//! * [`par_chunks_mut`] — split a mutable slice into fixed-size chunks and
//!   hand disjoint chunks to workers. Used for row-partitioned matmul where
//!   each output row is written by exactly one thread.
//!
//! Neither primitive imposes an ordering on *observable side effects* of
//! the jobs themselves; jobs that must compose deterministically have to be
//! independent (own RNG, own telemetry registry, no shared mutable state).
//! That contract is what `Runner::compare` and the bench binaries uphold.
//!
//! Thread count comes from the `FAIRMOVE_THREADS` environment variable
//! (default: all available cores), read once per process. The `*_threads`
//! variants take an explicit count so tests and benches can pin 1/2/4
//! without touching the environment.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Effective worker count: `FAIRMOVE_THREADS` if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`]. Cached for the process
/// lifetime; `FAIRMOVE_THREADS=1` forces the serial path everywhere.
///
/// A set-but-invalid value (`0`, garbage, overflow) is *rejected with a
/// single warning* on stderr and the default is used — silently running
/// serial (or worse, misparsing) would defeat the whole point of pinning
/// the thread count in CI.
pub fn thread_count() -> usize {
    static COUNT: OnceLock<usize> = OnceLock::new();
    *COUNT.get_or_init(|| {
        let default = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let raw = std::env::var("FAIRMOVE_THREADS").ok();
        match parse_thread_count(raw.as_deref(), default) {
            Ok(n) => n,
            Err(why) => {
                // The OnceLock initializer runs at most once per process,
                // so this warning cannot repeat.
                eprintln!("fairmove-parallel: {why}; using {default} thread(s)");
                default
            }
        }
    })
}

/// Parses a `FAIRMOVE_THREADS` value. `None` (unset) and `Some("")` mean
/// "use the default"; anything else must be a positive integer that fits in
/// `usize`. Invalid input returns the warning text to emit — callers decide
/// where it goes, which is what makes the matrix unit-testable.
pub fn parse_thread_count(raw: Option<&str>, default: usize) -> Result<usize, String> {
    let Some(raw) = raw else {
        return Ok(default);
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(default);
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Err("FAIRMOVE_THREADS=0 is invalid (need at least one worker)".into()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "FAIRMOVE_THREADS={trimmed:?} is not a positive integer"
        )),
    }
}

/// [`ordered_map_threads`] with the process-wide [`thread_count`].
pub fn ordered_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    ordered_map_threads(thread_count(), items, f)
}

/// Applies `f` to every item, using up to `threads` OS threads, and returns
/// the results **in the order the items were submitted**.
///
/// Jobs are claimed from a shared atomic cursor (dynamic load balancing:
/// a slow job does not stall the queue behind it), but each result is
/// written into the slot of its input index, so the returned `Vec` is
/// indistinguishable from `items.into_iter().map(f).collect()` as long as
/// `f` itself is deterministic and the jobs are independent.
///
/// With `threads <= 1` (or fewer than two items) no threads are spawned and
/// the jobs run inline, in order, on the caller's stack.
///
/// # Panics
/// Propagates the first panic raised by `f` on any worker thread.
pub fn ordered_map_threads<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = threads.min(n);
    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let item = jobs[idx]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("job claimed twice");
                    let result = f(item);
                    *slots[idx].lock().expect("result slot poisoned") = Some(result);
                })
            })
            .collect();
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without storing a result")
        })
        .collect()
}

/// [`par_chunks_mut_threads`] with the process-wide [`thread_count`].
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_chunks_mut_threads(thread_count(), data, chunk_len, f);
}

/// Splits `data` into consecutive chunks of `chunk_len` elements (the last
/// chunk may be shorter) and calls `f(chunk_index, chunk)` for each, using
/// up to `threads` OS threads.
///
/// Chunks are disjoint, so each element is written by exactly one thread;
/// as long as `f`'s output for a chunk depends only on `(chunk_index,
/// chunk)` and shared read-only state, the final contents of `data` are
/// bit-identical for every thread count.
///
/// With `threads <= 1` (or a single chunk) the chunks are processed inline,
/// in order.
///
/// # Panics
/// Panics if `chunk_len == 0`; propagates the first panic raised by `f`.
pub fn par_chunks_mut_threads<T, F>(threads: usize, data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    if threads <= 1 || n_chunks <= 1 {
        for (idx, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(idx, chunk);
        }
        return;
    }
    let workers = threads.min(n_chunks);
    // One claimable slot per chunk: a worker takes the (index, chunk) pair
    // exactly once under the slot's own mutex.
    type ChunkSlot<'a, T> = Mutex<Option<(usize, &'a mut [T])>>;
    let jobs: Vec<ChunkSlot<'_, T>> = data
        .chunks_mut(chunk_len)
        .enumerate()
        .map(|j| Mutex::new(Some(j)))
        .collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let at = cursor.fetch_add(1, Ordering::Relaxed);
                    if at >= n_chunks {
                        break;
                    }
                    let (idx, chunk) = jobs[at]
                        .lock()
                        .expect("chunk slot poisoned")
                        .take()
                        .expect("chunk claimed twice");
                    f(idx, chunk);
                })
            })
            .collect();
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn ordered_map_preserves_submission_order() {
        for threads in [1, 2, 4, 8] {
            let out = ordered_map_threads(threads, (0..100u64).collect(), |x| x * x);
            let expected: Vec<u64> = (0..100).map(|x| x * x).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn ordered_map_handles_empty_and_singleton() {
        let empty: Vec<u32> = ordered_map_threads(4, Vec::new(), |x: u32| x);
        assert!(empty.is_empty());
        assert_eq!(ordered_map_threads(4, vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn ordered_map_actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        // Jobs park briefly so slow claiming cannot let one worker drain
        // the whole queue before the others start.
        let _ = ordered_map_threads(4, (0..16).collect::<Vec<u32>>(), |x| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            seen.lock().unwrap().insert(std::thread::current().id());
            x
        });
        // At least one spawned worker ran (the scope spawns workers even on
        // a single-core host; we only assert >= 1 to stay host-agnostic).
        assert!(!seen.lock().unwrap().is_empty());
    }

    #[test]
    fn ordered_map_moves_non_clone_items() {
        struct NoClone(u32);
        let items = vec![NoClone(1), NoClone(2), NoClone(3)];
        let out = ordered_map_threads(2, items, |x| x.0 * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "job 3 panicked")]
    fn ordered_map_propagates_worker_panics() {
        let _ = ordered_map_threads(2, (0..8u32).collect(), |x| {
            if x == 3 {
                panic!("job 3 panicked");
            }
            x
        });
    }

    #[test]
    fn par_chunks_mut_writes_every_chunk_once() {
        for threads in [1, 2, 4] {
            let mut data = vec![0u32; 103];
            let calls = AtomicUsize::new(0);
            par_chunks_mut_threads(threads, &mut data, 10, |idx, chunk| {
                calls.fetch_add(1, Ordering::Relaxed);
                for (off, v) in chunk.iter_mut().enumerate() {
                    *v = (idx * 10 + off) as u32;
                }
            });
            assert_eq!(calls.load(Ordering::Relaxed), 11, "threads={threads}");
            let expected: Vec<u32> = (0..103).collect();
            assert_eq!(data, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_mut_last_chunk_may_be_short() {
        let mut data = vec![0u8; 7];
        par_chunks_mut_threads(4, &mut data, 3, |idx, chunk| {
            for v in chunk.iter_mut() {
                *v = idx as u8 + 1;
            }
        });
        assert_eq!(data, vec![1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn par_chunks_mut_rejects_zero_chunk() {
        let mut data = [0u8; 4];
        par_chunks_mut_threads(2, &mut data, 0, |_, _| {});
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn parse_thread_count_accepts_valid_values() {
        // Unset and blank fall back to the default without complaint.
        assert_eq!(parse_thread_count(None, 8), Ok(8));
        assert_eq!(parse_thread_count(Some(""), 8), Ok(8));
        assert_eq!(parse_thread_count(Some("   "), 8), Ok(8));
        // Positive integers are taken verbatim, whitespace-trimmed.
        assert_eq!(parse_thread_count(Some("1"), 8), Ok(1));
        assert_eq!(parse_thread_count(Some("4"), 8), Ok(4));
        assert_eq!(parse_thread_count(Some(" 16 "), 8), Ok(16));
        assert_eq!(
            parse_thread_count(Some(&usize::MAX.to_string()), 8),
            Ok(usize::MAX)
        );
    }

    #[test]
    fn parse_thread_count_rejects_invalid_values() {
        // Zero workers is meaningless.
        assert!(parse_thread_count(Some("0"), 8).is_err());
        // Negative, fractional, garbage, hex, and overflowing values are
        // all rejected rather than silently misbehaving.
        for bad in ["-1", "1.5", "fast", "0x4", "4threads", "+-2", "١٢"] {
            assert!(
                parse_thread_count(Some(bad), 8).is_err(),
                "{bad:?} must be rejected"
            );
        }
        // One past usize::MAX overflows the parse.
        let overflow = format!("{}0", usize::MAX);
        assert!(parse_thread_count(Some(&overflow), 8).is_err());
    }

    #[test]
    fn parse_thread_count_errors_name_the_variable() {
        // The warning must tell the operator which knob was wrong.
        let err = parse_thread_count(Some("0"), 8).unwrap_err();
        assert!(err.contains("FAIRMOVE_THREADS"), "{err}");
        let err = parse_thread_count(Some("junk"), 8).unwrap_err();
        assert!(
            err.contains("FAIRMOVE_THREADS") && err.contains("junk"),
            "{err}"
        );
    }
}
