//! Record schemas of the paper's Table I, with CSV round-tripping.
//!
//! The five datasets of Section II-A: GPS records, transaction (fare)
//! records, charging-station metadata, urban-partition metadata, and the
//! charging tariff (the tariff lives in [`crate::pricing`]). The synthetic
//! pipeline emits the same shapes so downstream tooling written against the
//! real feeds would work unchanged.

use fairmove_city::{Point, RegionId, SimTime, StationId};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Error parsing a CSV line into a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "record parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(message: impl Into<String>) -> ParseError {
    ParseError {
        message: message.into(),
    }
}

fn parse_field<T: FromStr>(s: &str, name: &str) -> Result<T, ParseError> {
    s.trim()
        .parse()
        .map_err(|_| err(format!("bad {name}: {s:?}")))
}

/// One GPS ping (Table I row 1): where a vehicle is and whether it carries a
/// passenger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpsRecord {
    /// Fleet-unique vehicle id.
    pub vehicle_id: u32,
    /// Position in city coordinates (km; stands in for lon/lat).
    pub position: Point,
    /// Time of the ping.
    pub timestamp: SimTime,
    /// Heading in degrees, `[0, 360)`.
    pub direction_deg: f64,
    /// Instantaneous speed, km/h.
    pub speed_kmh: f64,
    /// Whether a passenger is on board.
    pub occupied: bool,
}

impl GpsRecord {
    /// Serializes to a CSV line (no trailing newline).
    pub fn to_csv(&self) -> String {
        format!(
            "{},{:.5},{:.5},{},{:.1},{:.1},{}",
            self.vehicle_id,
            self.position.x,
            self.position.y,
            self.timestamp.minutes(),
            self.direction_deg,
            self.speed_kmh,
            u8::from(self.occupied),
        )
    }

    /// Parses a line produced by [`Self::to_csv`].
    pub fn from_csv(line: &str) -> Result<Self, ParseError> {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 7 {
            return Err(err(format!("expected 7 GPS fields, got {}", f.len())));
        }
        Ok(GpsRecord {
            vehicle_id: parse_field(f[0], "vehicle_id")?,
            position: Point::new(parse_field(f[1], "x")?, parse_field(f[2], "y")?),
            timestamp: SimTime(parse_field(f[3], "timestamp")?),
            direction_deg: parse_field(f[4], "direction")?,
            speed_kmh: parse_field(f[5], "speed")?,
            occupied: parse_field::<u8>(f[6], "occupied")? != 0,
        })
    }
}

/// One completed trip (Table I row 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransactionRecord {
    /// Fleet-unique vehicle id.
    pub vehicle_id: u32,
    /// Pickup time.
    pub pickup_time: SimTime,
    /// Drop-off time.
    pub dropoff_time: SimTime,
    /// Pickup position.
    pub pickup_pos: Point,
    /// Drop-off position.
    pub dropoff_pos: Point,
    /// Distance driven with the passenger aboard, km.
    pub operating_km: f64,
    /// Distance cruised searching for this passenger, km.
    pub cruising_km: f64,
    /// Metered fare, CNY.
    pub fare_cny: f64,
}

impl TransactionRecord {
    /// Serializes to a CSV line (no trailing newline).
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{:.5},{:.5},{:.5},{:.5},{:.3},{:.3},{:.2}",
            self.vehicle_id,
            self.pickup_time.minutes(),
            self.dropoff_time.minutes(),
            self.pickup_pos.x,
            self.pickup_pos.y,
            self.dropoff_pos.x,
            self.dropoff_pos.y,
            self.operating_km,
            self.cruising_km,
            self.fare_cny,
        )
    }

    /// Parses a line produced by [`Self::to_csv`].
    pub fn from_csv(line: &str) -> Result<Self, ParseError> {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 10 {
            return Err(err(format!(
                "expected 10 transaction fields, got {}",
                f.len()
            )));
        }
        Ok(TransactionRecord {
            vehicle_id: parse_field(f[0], "vehicle_id")?,
            pickup_time: SimTime(parse_field(f[1], "pickup_time")?),
            dropoff_time: SimTime(parse_field(f[2], "dropoff_time")?),
            pickup_pos: Point::new(parse_field(f[3], "px")?, parse_field(f[4], "py")?),
            dropoff_pos: Point::new(parse_field(f[5], "dx")?, parse_field(f[6], "dy")?),
            operating_km: parse_field(f[7], "operating_km")?,
            cruising_km: parse_field(f[8], "cruising_km")?,
            fare_cny: parse_field(f[9], "fare")?,
        })
    }

    /// Trip duration in minutes.
    #[inline]
    pub fn duration_minutes(&self) -> u32 {
        self.dropoff_time - self.pickup_time
    }
}

/// Charging-station metadata (Table I row 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StationRecord {
    /// Station id.
    pub station_id: StationId,
    /// Station name.
    pub name: String,
    /// Position.
    pub position: Point,
    /// Number of fast charging points.
    pub fast_points: u32,
}

impl StationRecord {
    /// Serializes to a CSV line. Names containing commas are rejected by
    /// `from_csv`; the synthetic generator never emits them.
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{:.5},{:.5},{}",
            self.station_id.0, self.name, self.position.x, self.position.y, self.fast_points
        )
    }

    /// Parses a line produced by [`Self::to_csv`].
    pub fn from_csv(line: &str) -> Result<Self, ParseError> {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 5 {
            return Err(err(format!("expected 5 station fields, got {}", f.len())));
        }
        Ok(StationRecord {
            station_id: StationId(parse_field(f[0], "station_id")?),
            name: f[1].to_string(),
            position: Point::new(parse_field(f[2], "x")?, parse_field(f[3], "y")?),
            fast_points: parse_field(f[4], "fast_points")?,
        })
    }
}

/// Urban-partition metadata (Table I row 4): a region id plus its centroid
/// (boundary polygons are reduced to the representative point the algorithms
/// use).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionRecord {
    /// Region id.
    pub region_id: RegionId,
    /// Representative point of the region.
    pub centroid: Point,
    /// Region area, km².
    pub area_km2: f64,
}

impl PartitionRecord {
    /// Serializes to a CSV line (no trailing newline).
    pub fn to_csv(&self) -> String {
        format!(
            "{},{:.5},{:.5},{:.4}",
            self.region_id.0, self.centroid.x, self.centroid.y, self.area_km2
        )
    }

    /// Parses a line produced by [`Self::to_csv`].
    pub fn from_csv(line: &str) -> Result<Self, ParseError> {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 4 {
            return Err(err(format!("expected 4 partition fields, got {}", f.len())));
        }
        Ok(PartitionRecord {
            region_id: RegionId(parse_field(f[0], "region_id")?),
            centroid: Point::new(parse_field(f[1], "x")?, parse_field(f[2], "y")?),
            area_km2: parse_field(f[3], "area")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gps_round_trip() {
        let r = GpsRecord {
            vehicle_id: 12345,
            position: Point::new(12.34567, 8.9),
            timestamp: SimTime(98765),
            direction_deg: 271.5,
            speed_kmh: 43.2,
            occupied: true,
        };
        let parsed = GpsRecord::from_csv(&r.to_csv()).unwrap();
        assert_eq!(parsed.vehicle_id, r.vehicle_id);
        assert_eq!(parsed.timestamp, r.timestamp);
        assert!(parsed.occupied);
        assert!((parsed.position.x - r.position.x).abs() < 1e-4);
    }

    #[test]
    fn transaction_round_trip() {
        let r = TransactionRecord {
            vehicle_id: 7,
            pickup_time: SimTime(100),
            dropoff_time: SimTime(125),
            pickup_pos: Point::new(1.0, 2.0),
            dropoff_pos: Point::new(3.0, 4.0),
            operating_km: 7.125,
            cruising_km: 1.5,
            fare_cny: 24.30,
        };
        let parsed = TransactionRecord::from_csv(&r.to_csv()).unwrap();
        assert_eq!(parsed.duration_minutes(), 25);
        assert!((parsed.fare_cny - 24.30).abs() < 1e-9);
        assert!((parsed.operating_km - 7.125).abs() < 1e-3);
    }

    #[test]
    fn station_round_trip() {
        let r = StationRecord {
            station_id: StationId(9),
            name: "Futian Hub".to_string(),
            position: Point::new(25.0, 12.0),
            fast_points: 120,
        };
        let parsed = StationRecord::from_csv(&r.to_csv()).unwrap();
        assert_eq!(
            parsed,
            StationRecord {
                position: Point::new(25.0, 12.0),
                ..parsed.clone()
            }
        );
        assert_eq!(parsed.name, "Futian Hub");
        assert_eq!(parsed.fast_points, 120);
    }

    #[test]
    fn partition_round_trip() {
        let r = PartitionRecord {
            region_id: RegionId(44),
            centroid: Point::new(10.5, 20.25),
            area_km2: 3.7,
        };
        let parsed = PartitionRecord::from_csv(&r.to_csv()).unwrap();
        assert_eq!(parsed.region_id, RegionId(44));
        assert!((parsed.area_km2 - 3.7).abs() < 1e-9);
    }

    #[test]
    fn wrong_field_count_is_rejected() {
        assert!(GpsRecord::from_csv("1,2,3").is_err());
        assert!(TransactionRecord::from_csv("1,2,3,4").is_err());
        assert!(StationRecord::from_csv("").is_err());
        assert!(PartitionRecord::from_csv("a,b").is_err());
    }

    #[test]
    fn garbage_fields_are_rejected() {
        assert!(GpsRecord::from_csv("x,1,2,3,4,5,1").is_err());
        let e = GpsRecord::from_csv("x,1,2,3,4,5,1").unwrap_err();
        assert!(e.to_string().contains("vehicle_id"));
    }

    #[test]
    fn occupied_flag_zero_parses_false() {
        let line = "1,0.00000,0.00000,0,0.0,0.0,0";
        assert!(!GpsRecord::from_csv(line).unwrap().occupied);
    }
}
