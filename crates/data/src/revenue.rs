//! Metered fare model.
//!
//! Shenzhen taxi fares are distance-metered: a flagfall covering the first
//! couple of kilometres, a per-km rate after that, and a late-night
//! surcharge. Combined with the gravity destination model this reproduces
//! the paper's Fig. 7: per-trip revenue ranges from a few CNY (short suburb
//! hops) to over 100 CNY (airport runs), higher at night per kilometre.

use fairmove_city::HourOfDay;
use serde::{Deserialize, Serialize};

/// Distance-metered taxi fare schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FareModel {
    /// Base fare, CNY (covers `flagfall_km`).
    pub flagfall_cny: f64,
    /// Distance included in the flagfall, km.
    pub flagfall_km: f64,
    /// Rate beyond the flagfall distance, CNY/km.
    pub per_km_cny: f64,
    /// Multiplier applied during the night window.
    pub night_multiplier: f64,
    /// Night window start hour (inclusive, wraps midnight).
    pub night_start: u8,
    /// Night window end hour (exclusive).
    pub night_end: u8,
}

impl Default for FareModel {
    fn default() -> Self {
        // Shenzhen's published taxi tariff (2019-era): 11 CNY first 2 km,
        // 2.6 CNY/km after, +20% 23:00-06:00.
        FareModel {
            flagfall_cny: 11.0,
            flagfall_km: 2.0,
            per_km_cny: 2.6,
            night_multiplier: 1.2,
            night_start: 23,
            night_end: 6,
        }
    }
}

impl FareModel {
    /// Fare for a trip of `distance_km` picked up at `hour`, CNY.
    pub fn fare(&self, distance_km: f64, hour: HourOfDay) -> f64 {
        let base = if distance_km <= self.flagfall_km {
            self.flagfall_cny
        } else {
            self.flagfall_cny + (distance_km - self.flagfall_km) * self.per_km_cny
        };
        if hour.in_range(self.night_start, self.night_end) {
            base * self.night_multiplier
        } else {
            base
        }
    }

    /// Whether `hour` falls in the surcharged night window.
    #[inline]
    pub fn is_night(&self, hour: HourOfDay) -> bool {
        hour.in_range(self.night_start, self.night_end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn short_trip_pays_flagfall() {
        let f = FareModel::default();
        assert_eq!(f.fare(0.5, HourOfDay(12)), 11.0);
        assert_eq!(f.fare(2.0, HourOfDay(12)), 11.0);
    }

    #[test]
    fn metered_distance_beyond_flagfall() {
        let f = FareModel::default();
        // 10 km day trip: 11 + 8*2.6 = 31.8.
        assert!((f.fare(10.0, HourOfDay(12)) - 31.8).abs() < 1e-9);
    }

    #[test]
    fn airport_run_exceeds_100_cny() {
        // Fig. 7: airport region per-trip revenue can exceed 100 CNY.
        let f = FareModel::default();
        assert!(f.fare(40.0, HourOfDay(10)) > 100.0);
    }

    #[test]
    fn night_surcharge_window() {
        let f = FareModel::default();
        assert!(f.is_night(HourOfDay(23)));
        assert!(f.is_night(HourOfDay(2)));
        assert!(!f.is_night(HourOfDay(6)));
        assert!(!f.is_night(HourOfDay(12)));
        let day = f.fare(10.0, HourOfDay(12));
        let night = f.fare(10.0, HourOfDay(2));
        assert!((night / day - 1.2).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn fare_is_monotone_in_distance(d in 0.0..60.0f64, extra in 0.0..20.0f64, h in 0u8..24) {
            let f = FareModel::default();
            prop_assert!(f.fare(d + extra, HourOfDay(h)) >= f.fare(d, HourOfDay(h)) - 1e-12);
        }

        #[test]
        fn fare_at_least_flagfall(d in 0.0..60.0f64, h in 0u8..24) {
            let f = FareModel::default();
            prop_assert!(f.fare(d, HourOfDay(h)) >= f.flagfall_cny - 1e-12);
        }
    }
}
