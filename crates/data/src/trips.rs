//! Passenger-request generation.
//!
//! Requests arrive as an inhomogeneous Poisson process over (region, slot)
//! cells with rates from [`DemandModel`]; each request draws a destination
//! from a gravity model (mass = destination archetype weight, decay =
//! exponential in driving distance) and a metered fare from [`FareModel`].
//! Passengers have finite patience — unserved requests expire, as in the
//! paper's TBA baseline description ("before orders expire").

use crate::demand::DemandModel;
use crate::random;
use crate::revenue::FareModel;
use fairmove_city::{City, RegionId, SimTime, TimeSlot, SLOT_MINUTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Distance-decay length scale of the gravity destination model, km.
const GRAVITY_SCALE_KM: f64 = 7.0;

/// Decay scale for airport-origin trips, km. Air travelers head to wherever
/// in the city they live or work, so distance decay is far weaker — this is
/// what makes airport per-trip revenue "always high" (Fig. 7).
const AIRPORT_GRAVITY_SCALE_KM: f64 = 40.0;

/// One passenger request (trip demand).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PassengerRequest {
    /// Unique, monotonically increasing request id.
    pub id: u64,
    /// Pickup region.
    pub origin: RegionId,
    /// Drop-off region.
    pub destination: RegionId,
    /// Realized driving distance of the trip, km.
    pub distance_km: f64,
    /// Metered fare, CNY.
    pub fare_cny: f64,
    /// Time the request appeared.
    pub requested_at: SimTime,
    /// Minutes after which an unserved request expires.
    pub max_wait_minutes: u32,
}

/// Generates passenger requests slot by slot.
///
/// Deterministic in its seed: two generators with identical inputs emit the
/// same request stream, which is what lets all displacement policies be
/// evaluated against the *same* demand realization.
#[derive(Debug, Clone)]
pub struct TripGenerator {
    demand: DemandModel,
    fare: FareModel,
    rng: StdRng,
    next_id: u64,
    /// Per-origin cumulative gravity weights over destinations (prefix sums).
    cum_weights: Vec<Vec<f64>>,
    /// Driving distances between region centroids, km.
    distances: Vec<Vec<f64>>,
    /// Typical intra-region trip distance per region, km.
    intra_km: Vec<f64>,
}

impl TripGenerator {
    /// Builds a generator for `city`.
    pub fn new(city: &City, demand: DemandModel, fare: FareModel, seed: u64) -> Self {
        let n = city.n_regions();
        let mut distances = vec![vec![0.0f64; n]; n];
        for (o, row) in distances.iter_mut().enumerate() {
            for (d, km) in row.iter_mut().enumerate() {
                *km = city.region_driving_distance(RegionId(o as u16), RegionId(d as u16));
            }
        }
        let intra_km: Vec<f64> = city
            .partition()
            .regions()
            .iter()
            .map(|r| (r.area_km2.sqrt() * 0.7).max(0.5))
            .collect();

        let mut cum_weights = Vec::with_capacity(n);
        for o in 0..n {
            let scale = match demand.archetype(RegionId(o as u16)) {
                crate::demand::RegionArchetype::Airport => AIRPORT_GRAVITY_SCALE_KM,
                _ => GRAVITY_SCALE_KM,
            };
            let mut acc = 0.0;
            let row: Vec<f64> = (0..n)
                .map(|d| {
                    let mass = demand.destination_weight(RegionId(d as u16));
                    let dist = if o == d { intra_km[o] } else { distances[o][d] };
                    acc += mass * (-dist / scale).exp();
                    acc
                })
                .collect();
            cum_weights.push(row);
        }

        TripGenerator {
            demand,
            fare,
            rng: StdRng::seed_from_u64(seed ^ 0x54_5249_5053), // "TRIPS" salt
            next_id: 0,
            cum_weights,
            distances,
            intra_km,
        }
    }

    /// The demand model in use.
    #[inline]
    pub fn demand(&self) -> &DemandModel {
        &self.demand
    }

    /// The fare model in use.
    #[inline]
    pub fn fare_model(&self) -> &FareModel {
        &self.fare
    }

    /// Snapshot of the generator's mutable state: the RNG state (see
    /// [`StdRng::state`]) and the next request id. The demand/fare tables
    /// are pure functions of the construction inputs, so a generator rebuilt
    /// with [`TripGenerator::new`] and restored with
    /// [`TripGenerator::restore_state`] continues the request stream
    /// bit-identically.
    pub fn state(&self) -> (([u32; 8], u64, u32), u64) {
        (self.rng.state(), self.next_id)
    }

    /// Restores the mutable state captured by [`TripGenerator::state`].
    pub fn restore_state(&mut self, rng: ([u32; 8], u64, u32), next_id: u64) {
        self.rng = StdRng::from_state(rng.0, rng.1, rng.2);
        self.next_id = next_id;
    }

    /// Generates all requests arriving during the slot that starts at
    /// `slot_start` (an absolute time aligned or unaligned to slot
    /// boundaries; arrival minutes are uniform in
    /// `[slot_start, slot_start + SLOT_MINUTES)`).
    pub fn generate_slot(&mut self, slot_start: SimTime) -> Vec<PassengerRequest> {
        self.generate_slot_scaled(slot_start, None)
    }

    /// Like [`generate_slot`](Self::generate_slot), but with optional
    /// per-region demand multipliers (fault injection: surges > 1,
    /// blackouts = 0). Passing `None` — or factors of exactly 1.0 — is
    /// bit-identical to the unscaled stream: `λ × 1.0 == λ` in IEEE
    /// arithmetic, so the Poisson sampler consumes the same draws.
    pub fn generate_slot_scaled(
        &mut self,
        slot_start: SimTime,
        scale: Option<&[f64]>,
    ) -> Vec<PassengerRequest> {
        // Expected count is small per region; reserve for the common case.
        let mut out = Vec::with_capacity(16);
        self.generate_slot_scaled_into(slot_start, scale, &mut out);
        out
    }

    /// Like [`generate_slot_scaled`](Self::generate_slot_scaled), but
    /// appends into a caller-owned buffer (cleared first) so the simulator's
    /// hot path can reuse one allocation across slots. The RNG draw order is
    /// identical to the allocating variant: same requests, same ids.
    pub fn generate_slot_scaled_into(
        &mut self,
        slot_start: SimTime,
        scale: Option<&[f64]>,
        out: &mut Vec<PassengerRequest>,
    ) {
        let slot: TimeSlot = slot_start.slot_of_day();
        let n = self.cum_weights.len();
        if let Some(s) = scale {
            assert_eq!(s.len(), n, "demand scale must cover every region");
        }
        out.clear();
        for o in 0..n {
            let origin = RegionId(o as u16);
            let mut lambda = self.demand.intensity(origin, slot);
            if let Some(s) = scale {
                lambda *= s[o];
            }
            let count = random::poisson(&mut self.rng, lambda);
            for _ in 0..count {
                out.push(self.make_request(origin, slot_start));
            }
        }
    }

    fn make_request(&mut self, origin: RegionId, slot_start: SimTime) -> PassengerRequest {
        let o = origin.index();
        let destination = self.sample_destination(o);
        let d = destination.index();
        let base_dist = if o == d {
            self.intra_km[o]
        } else {
            self.distances[o][d]
        };
        // Door-to-door jitter: trips don't start/end exactly at centroids.
        let jitter = random::log_normal_mean_cv(&mut self.rng, 1.0, 0.35);
        let distance_km = (base_dist * jitter).max(0.3);
        let requested_at = slot_start + self.rng.gen_range(0..SLOT_MINUTES);
        let fare_cny = self.fare.fare(distance_km, requested_at.hour_of_day());
        let max_wait_minutes = (8.0 + random::exponential(&mut self.rng, 7.0)).min(30.0) as u32;
        let id = self.next_id;
        self.next_id += 1;
        PassengerRequest {
            id,
            origin,
            destination,
            distance_km,
            fare_cny,
            requested_at,
            max_wait_minutes,
        }
    }

    fn sample_destination(&mut self, origin_idx: usize) -> RegionId {
        let row = &self.cum_weights[origin_idx];
        let total = *row.last().expect("non-empty city");
        let x = self.rng.gen_range(0.0..total);
        let idx = match row.binary_search_by(|w| w.total_cmp(&x)) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        RegionId(idx.min(row.len() - 1) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairmove_city::{CityConfig, MINUTES_PER_DAY};

    fn generator(daily_trips: f64) -> (City, TripGenerator) {
        let city = City::generate(CityConfig::default());
        let demand = DemandModel::new(&city, daily_trips, 2);
        let gen = TripGenerator::new(&city, demand, FareModel::default(), 3);
        (city, gen)
    }

    fn one_day(gen: &mut TripGenerator) -> Vec<PassengerRequest> {
        let mut all = Vec::new();
        let mut t = SimTime::ZERO;
        while t.minutes() < MINUTES_PER_DAY {
            all.extend(gen.generate_slot(t));
            t += SLOT_MINUTES;
        }
        all
    }

    #[test]
    fn daily_volume_matches_model() {
        let (_, mut gen) = generator(10_000.0);
        let n = one_day(&mut gen).len() as f64;
        assert!(
            (n - 10_000.0).abs() < 500.0,
            "expected ~10000 trips, got {n}"
        );
    }

    #[test]
    fn request_ids_are_unique_and_monotone() {
        let (_, mut gen) = generator(5_000.0);
        let all = one_day(&mut gen);
        for w in all.windows(2) {
            assert!(w[0].id < w[1].id || w[0].requested_at > w[1].requested_at);
        }
        let mut ids: Vec<u64> = all.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
    }

    #[test]
    fn arrival_times_fall_in_slot() {
        let (_, mut gen) = generator(5_000.0);
        let start = SimTime::from_dhm(0, 9, 0);
        for r in gen.generate_slot(start) {
            assert!(r.requested_at >= start);
            assert!(r.requested_at < start + SLOT_MINUTES);
        }
    }

    #[test]
    fn fares_match_fare_model() {
        let (_, mut gen) = generator(5_000.0);
        let reqs = gen.generate_slot(SimTime::from_dhm(0, 10, 0));
        let fare = FareModel::default();
        for r in &reqs {
            let expected = fare.fare(r.distance_km, r.requested_at.hour_of_day());
            assert!((r.fare_cny - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, mut a) = generator(5_000.0);
        let (_, mut b) = generator(5_000.0);
        let ra = a.generate_slot(SimTime::from_dhm(0, 8, 0));
        let rb = b.generate_slot(SimTime::from_dhm(0, 8, 0));
        assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.origin, y.origin);
            assert_eq!(x.destination, y.destination);
            assert_eq!(x.fare_cny, y.fare_cny);
        }
    }

    #[test]
    fn destinations_favor_nearby_regions() {
        let (city, mut gen) = generator(40_000.0);
        let all = one_day(&mut gen);
        // Mean trip distance should be well below the city diameter: the
        // gravity decay keeps most trips local.
        let mean_dist: f64 = all.iter().map(|r| r.distance_km).sum::<f64>() / all.len() as f64;
        let diameter = city.partition().bounds().width() + city.partition().bounds().height();
        assert!(mean_dist < diameter / 3.0, "mean {mean_dist} km");
        assert!(mean_dist > 1.0, "mean {mean_dist} km suspiciously short");
    }

    #[test]
    fn airport_trips_are_longer_and_pricier() {
        let (_, mut gen) = generator(40_000.0);
        let airport = gen.demand().airport().unwrap();
        let all: Vec<PassengerRequest> = (0..3).flat_map(|_| one_day(&mut gen)).collect();
        let (mut a_rev, mut a_n, mut rest_rev, mut rest_n) = (0.0, 0u32, 0.0, 0u32);
        for r in &all {
            if r.origin == airport {
                a_rev += r.fare_cny;
                a_n += 1;
            } else {
                rest_rev += r.fare_cny;
                rest_n += 1;
            }
        }
        assert!(a_n > 10, "airport too quiet: {a_n} trips");
        let a_mean = a_rev / f64::from(a_n);
        let rest_mean = rest_rev / f64::from(rest_n);
        assert!(
            a_mean > 1.5 * rest_mean,
            "airport {a_mean:.1} CNY vs rest {rest_mean:.1} CNY"
        );
    }

    #[test]
    fn rush_hour_generates_more_than_trough() {
        let (_, mut gen) = generator(20_000.0);
        let mut rush = 0usize;
        let mut trough = 0usize;
        for day in 0..3 {
            for s in 0..6 {
                rush += gen
                    .generate_slot(SimTime::from_dhm(day, 18, 0) + s * SLOT_MINUTES)
                    .len();
                trough += gen
                    .generate_slot(SimTime::from_dhm(day, 3, 0) + s * SLOT_MINUTES)
                    .len();
            }
        }
        assert!(rush > 3 * trough.max(1), "rush {rush} vs trough {trough}");
    }

    #[test]
    fn patience_is_bounded() {
        let (_, mut gen) = generator(20_000.0);
        for r in gen.generate_slot(SimTime::from_dhm(0, 18, 0)) {
            assert!(r.max_wait_minutes >= 8);
            assert!(r.max_wait_minutes <= 30);
        }
    }
}
