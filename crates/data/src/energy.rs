//! The e-taxi energy model.
//!
//! All Shenzhen e-taxis are the same model, the BYD e6: 80 kWh battery,
//! 400 km range (Section II-A), giving a flat 0.2 kWh/km consumption. The
//! paper's action model sends a taxi to charge when its state of charge drops
//! below a threshold `η` (20 % in the paper, Section III-C Reward).

use serde::{Deserialize, Serialize};

/// Battery and consumption constants for a fleet vehicle model.
///
/// ```
/// use fairmove_data::EnergyModel;
/// let byd_e6 = EnergyModel::default();
/// assert_eq!(byd_e6.range_km(1.0), 400.0);   // paper: 400 km on 80 kWh
/// assert!(byd_e6.must_charge(0.19));         // below the 20% threshold
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Usable battery capacity, kWh (BYD e6: 80).
    pub battery_kwh: f64,
    /// Energy drawn per driven km, kWh/km (BYD e6: 80 kWh / 400 km = 0.2).
    pub consumption_kwh_per_km: f64,
    /// Fast-charging power, kW. ~40 kW reproduces the paper's Fig. 3
    /// charge-time distribution (73.5 % of events between 45 and 120 min).
    pub charge_power_kw: f64,
    /// State-of-charge fraction below which the taxi must go charge
    /// (the paper's `η` = 0.2).
    pub charge_threshold: f64,
    /// State-of-charge fraction at which drivers unplug. Real drivers stop
    /// near 95 % because the final constant-voltage phase is slow.
    pub charge_target: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            battery_kwh: 80.0,
            consumption_kwh_per_km: 0.2,
            charge_power_kw: 40.0,
            charge_threshold: 0.2,
            charge_target: 0.95,
        }
    }
}

impl EnergyModel {
    /// Energy consumed by driving `km`, kWh.
    #[inline]
    pub fn consumption(&self, km: f64) -> f64 {
        km * self.consumption_kwh_per_km
    }

    /// Driving range available from `soc` (fraction), km.
    #[inline]
    pub fn range_km(&self, soc: f64) -> f64 {
        soc * self.battery_kwh / self.consumption_kwh_per_km
    }

    /// State-of-charge drop caused by driving `km`.
    #[inline]
    pub fn soc_drop(&self, km: f64) -> f64 {
        self.consumption(km) / self.battery_kwh
    }

    /// Minutes needed to charge from `from_soc` to `to_soc` at full power.
    ///
    /// Returns 0 when `from_soc >= to_soc`.
    pub fn charge_minutes(&self, from_soc: f64, to_soc: f64) -> u32 {
        if from_soc >= to_soc {
            return 0;
        }
        let kwh = (to_soc - from_soc) * self.battery_kwh;
        let minutes = kwh / self.charge_power_kw * 60.0;
        (minutes.ceil() as u32).max(1)
    }

    /// Energy delivered by charging for `minutes` at full power, kWh,
    /// capped so SoC does not exceed 1.0 starting from `from_soc`.
    pub fn energy_for_minutes(&self, from_soc: f64, minutes: u32) -> f64 {
        let uncapped = self.charge_power_kw * f64::from(minutes) / 60.0;
        let headroom = ((1.0 - from_soc) * self.battery_kwh).max(0.0);
        uncapped.min(headroom)
    }

    /// Whether a taxi at `soc` must go charge (`soc < η`).
    #[inline]
    pub fn must_charge(&self, soc: f64) -> bool {
        soc < self.charge_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn byd_e6_constants() {
        let m = EnergyModel::default();
        assert_eq!(m.battery_kwh, 80.0);
        assert!((m.range_km(1.0) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn consumption_scales_linearly() {
        let m = EnergyModel::default();
        assert!((m.consumption(100.0) - 20.0).abs() < 1e-9);
        assert!((m.soc_drop(100.0) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn typical_charge_event_duration_matches_fig3() {
        // Charging from the 20 % threshold to the 95 % target must land in
        // the paper's dominant 45–120 minute window.
        let m = EnergyModel::default();
        let minutes = m.charge_minutes(0.2, 0.95);
        assert!((45..=120).contains(&minutes), "got {minutes} min");
    }

    #[test]
    fn charge_minutes_zero_when_already_full() {
        let m = EnergyModel::default();
        assert_eq!(m.charge_minutes(0.95, 0.95), 0);
        assert_eq!(m.charge_minutes(0.99, 0.95), 0);
    }

    #[test]
    fn energy_for_minutes_caps_at_full() {
        let m = EnergyModel::default();
        // From 90 % there is only 8 kWh of headroom.
        let e = m.energy_for_minutes(0.9, 600);
        assert!((e - 8.0).abs() < 1e-9);
        // Short charge is power-limited.
        let e2 = m.energy_for_minutes(0.2, 30);
        assert!((e2 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn must_charge_threshold() {
        let m = EnergyModel::default();
        assert!(m.must_charge(0.19));
        assert!(!m.must_charge(0.2));
        assert!(!m.must_charge(0.8));
    }

    proptest! {
        #[test]
        fn charge_minutes_monotone_in_target(from in 0.0..0.5f64, a in 0.5..0.9f64, extra in 0.01..0.1f64) {
            let m = EnergyModel::default();
            prop_assert!(m.charge_minutes(from, a + extra) >= m.charge_minutes(from, a));
        }

        #[test]
        fn energy_never_exceeds_headroom(soc in 0.0..1.0f64, minutes in 0u32..1000) {
            let m = EnergyModel::default();
            let e = m.energy_for_minutes(soc, minutes);
            prop_assert!(e >= 0.0);
            prop_assert!(soc + e / m.battery_kwh <= 1.0 + 1e-9);
        }

        #[test]
        fn range_and_soc_drop_are_inverse(km in 0.0..400.0f64) {
            let m = EnergyModel::default();
            let drop = m.soc_drop(km);
            prop_assert!((m.range_km(drop) - km).abs() < 1e-6);
        }
    }
}
