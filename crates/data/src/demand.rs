//! Spatio-temporal passenger demand model.
//!
//! Calibrated to the paper's Section II findings: demand has morning
//! (8:00–9:00) and evening (18:00–19:00) rush peaks, a deep late-night
//! trough (the paper's Fig. 11 shows drivers cruising longest at 5:00–7:00
//! when demand is thin), and strong spatial heterogeneity — a dense downtown,
//! an airport hotspot with long expensive trips, and sparse suburbs (Fig. 7).
//!
//! Each region gets an archetype from its geometry (distance from the city
//! centre), and the expected number of passenger arrivals in region `r`
//! during slot `t` factorizes as
//! `λ(r, t) = daily_trips · w(r)/Σw · profile(t)/Σprofile`.

use fairmove_city::{City, RegionId, TimeSlot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Land-use archetype of a region, the driver of its demand weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionArchetype {
    /// Dense commercial core: highest demand, short trips.
    Downtown,
    /// Ordinary urban fabric.
    Urban,
    /// Low-demand periphery.
    Suburb,
    /// The airport: moderate demand but long, expensive trips
    /// (the paper: "the per-trip revenue in the airport region is always
    /// high").
    Airport,
    /// Industrial zone: commuter-driven, below-urban demand.
    Industrial,
}

impl RegionArchetype {
    /// Relative trip-origination weight.
    pub fn origin_weight(self) -> f64 {
        match self {
            RegionArchetype::Downtown => 5.0,
            RegionArchetype::Urban => 2.2,
            RegionArchetype::Suburb => 0.5,
            RegionArchetype::Airport => 3.0,
            RegionArchetype::Industrial => 1.2,
        }
    }

    /// Relative attractiveness as a trip *destination* (gravity-model mass).
    pub fn destination_weight(self) -> f64 {
        match self {
            RegionArchetype::Downtown => 4.5,
            RegionArchetype::Urban => 2.2,
            RegionArchetype::Suburb => 0.8,
            RegionArchetype::Airport => 2.5,
            RegionArchetype::Industrial => 1.0,
        }
    }
}

/// The demand model: per-region archetypes/weights and a per-slot profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DemandModel {
    /// Expected total passenger requests per day across the city.
    pub daily_trips: f64,
    archetypes: Vec<RegionArchetype>,
    /// Normalized spatial weights, sum = 1.
    spatial: Vec<f64>,
    /// Normalized temporal profile over 144 slots, sum = 1.
    temporal: Vec<f64>,
}

impl DemandModel {
    /// Builds the model for `city`.
    ///
    /// `daily_trips` calibrates total volume. In Shenzhen the fleet of 20,130
    /// taxis served 23.2 M trips in a month ≈ 750 k/day ≈ 37 trips per taxi
    /// per day; scaled configs should keep that per-taxi ratio.
    pub fn new(city: &City, daily_trips: f64, seed: u64) -> Self {
        let archetypes = assign_archetypes(city, seed);
        let mut spatial: Vec<f64> = archetypes.iter().map(|a| a.origin_weight()).collect();
        let total: f64 = spatial.iter().sum();
        for w in &mut spatial {
            *w /= total;
        }

        let mut temporal: Vec<f64> = TimeSlot::all()
            .map(|s| hourly_profile(s.hour().0))
            .collect();
        let tsum: f64 = temporal.iter().sum();
        for w in &mut temporal {
            *w /= tsum;
        }

        DemandModel {
            daily_trips,
            archetypes,
            spatial,
            temporal,
        }
    }

    /// The archetype assigned to `region`.
    #[inline]
    pub fn archetype(&self, region: RegionId) -> RegionArchetype {
        self.archetypes[region.index()]
    }

    /// All archetypes in region-id order.
    #[inline]
    pub fn archetypes(&self) -> &[RegionArchetype] {
        &self.archetypes
    }

    /// Expected passenger arrivals in `region` during `slot`.
    ///
    /// This is also what the displacement system uses as the "expected number
    /// of passengers in each region at the next time slot" global-view state
    /// feature — the paper predicts it from historical + real-time data, and
    /// the model intensity is that predictor's ideal value.
    #[inline]
    pub fn intensity(&self, region: RegionId, slot: TimeSlot) -> f64 {
        self.daily_trips * self.spatial[region.index()] * self.temporal[slot.index()]
    }

    /// Expected arrivals in every region during `slot`.
    pub fn intensities_at(&self, slot: TimeSlot) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.spatial.len());
        self.intensities_into(slot, &mut out);
        out
    }

    /// Writes the expected arrivals for every region during `slot` into a
    /// caller-owned buffer (cleared first), avoiding the per-call allocation
    /// of [`intensities_at`](Self::intensities_at) on the simulator hot path.
    pub fn intensities_into(&self, slot: TimeSlot, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            self.spatial
                .iter()
                .map(|w| self.daily_trips * w * self.temporal[slot.index()]),
        );
    }

    /// Gravity-model destination mass for `region`.
    #[inline]
    pub fn destination_weight(&self, region: RegionId) -> f64 {
        self.archetypes[region.index()].destination_weight()
    }

    /// The region designated as the airport, if any.
    pub fn airport(&self) -> Option<RegionId> {
        self.archetypes
            .iter()
            .position(|a| *a == RegionArchetype::Airport)
            .map(|i| RegionId(i as u16))
    }
}

/// Relative demand level for an hour of day. Calibrated to the paper's
/// rush-hour structure: peaks at 8–9 and 18–19, trough at 3–5.
fn hourly_profile(hour: u8) -> f64 {
    match hour {
        0 => 0.55,
        1 => 0.40,
        2 => 0.30,
        3..=4 => 0.22,
        5 => 0.28,
        6 => 0.50,
        7 => 1.10,
        8..=9 => 1.80,
        10..=11 => 1.20,
        12..=13 => 1.35,
        14..=16 => 1.10,
        17 => 1.50,
        18..=19 => 2.00,
        20 => 1.50,
        21 => 1.25,
        22 => 1.00,
        _ => 0.75, // 23:00
    }
}

/// Assigns archetypes from geometry: the closer to the city centre the
/// denser; the region farthest from the centre (in the eastern half) becomes
/// the airport; a sprinkle of industrial zones in the middle ring.
fn assign_archetypes(city: &City, seed: u64) -> Vec<RegionArchetype> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4445_4d41_4e44); // "DEMAND" salt
    let center = city.partition().bounds().center();
    let max_dist = city
        .partition()
        .regions()
        .iter()
        .map(|r| r.centroid.distance(center))
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);

    let mut archetypes: Vec<RegionArchetype> = city
        .partition()
        .regions()
        .iter()
        .map(|r| {
            let frac = r.centroid.distance(center) / max_dist;
            if frac < 0.25 {
                RegionArchetype::Downtown
            } else if frac < 0.6 {
                if rng.gen_bool(0.15) {
                    RegionArchetype::Industrial
                } else {
                    RegionArchetype::Urban
                }
            } else {
                RegionArchetype::Suburb
            }
        })
        .collect();

    // Airport: the region farthest from the centre.
    let airport_idx = city
        .partition()
        .regions()
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            a.centroid
                .distance(center)
                .total_cmp(&b.centroid.distance(center))
        })
        .map(|(i, _)| i)
        .expect("city has regions");
    archetypes[airport_idx] = RegionArchetype::Airport;
    archetypes
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairmove_city::{CityConfig, SLOTS_PER_DAY};

    fn model() -> (City, DemandModel) {
        let city = City::generate(CityConfig::default());
        let model = DemandModel::new(&city, 20_000.0, 1);
        (city, model)
    }

    #[test]
    fn total_intensity_sums_to_daily_trips() {
        let (city, m) = model();
        let total: f64 = TimeSlot::all()
            .flat_map(|s| (0..city.n_regions() as u16).map(move |r| (RegionId(r), s)))
            .map(|(r, s)| m.intensity(r, s))
            .sum();
        assert!((total - 20_000.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn exactly_one_airport() {
        let (_, m) = model();
        let n = m
            .archetypes()
            .iter()
            .filter(|a| **a == RegionArchetype::Airport)
            .count();
        assert_eq!(n, 1);
        assert!(m.airport().is_some());
    }

    #[test]
    fn airport_is_far_from_center() {
        let (city, m) = model();
        let center = city.partition().bounds().center();
        let airport = m.airport().unwrap();
        let d_airport = city.region(airport).centroid.distance(center);
        let mean_d: f64 = city
            .partition()
            .regions()
            .iter()
            .map(|r| r.centroid.distance(center))
            .sum::<f64>()
            / city.n_regions() as f64;
        assert!(d_airport > mean_d, "airport at {d_airport}, mean {mean_d}");
    }

    #[test]
    fn rush_hour_beats_trough() {
        let (_, m) = model();
        let r = RegionId(0);
        let morning = m.intensity(r, TimeSlot(8 * 6)); // 08:00
        let trough = m.intensity(r, TimeSlot(4 * 6)); // 04:00
        assert!(
            morning > 5.0 * trough,
            "morning {morning} vs trough {trough}"
        );
    }

    #[test]
    fn evening_is_the_daily_peak() {
        let (_, m) = model();
        let r = RegionId(0);
        let evening = m.intensity(r, TimeSlot(18 * 6));
        for s in TimeSlot::all() {
            assert!(
                m.intensity(r, s) <= evening + 1e-12,
                "slot {s:?} beats evening"
            );
        }
    }

    #[test]
    fn downtown_outdraws_suburbs() {
        let (city, m) = model();
        let slot = TimeSlot(60);
        let mut downtown = Vec::new();
        let mut suburb = Vec::new();
        for r in 0..city.n_regions() as u16 {
            let id = RegionId(r);
            match m.archetype(id) {
                RegionArchetype::Downtown => downtown.push(m.intensity(id, slot)),
                RegionArchetype::Suburb => suburb.push(m.intensity(id, slot)),
                _ => {}
            }
        }
        assert!(!downtown.is_empty() && !suburb.is_empty());
        let d_mean: f64 = downtown.iter().sum::<f64>() / downtown.len() as f64;
        let s_mean: f64 = suburb.iter().sum::<f64>() / suburb.len() as f64;
        assert!(
            d_mean > 3.0 * s_mean,
            "downtown {d_mean} vs suburb {s_mean}"
        );
    }

    #[test]
    fn intensities_at_matches_pointwise() {
        let (city, m) = model();
        let slot = TimeSlot(100);
        let v = m.intensities_at(slot);
        assert_eq!(v.len(), city.n_regions());
        for (i, &x) in v.iter().enumerate() {
            assert!((x - m.intensity(RegionId(i as u16), slot)).abs() < 1e-12);
        }
    }

    #[test]
    fn model_is_deterministic() {
        let city = City::generate(CityConfig::default());
        let a = DemandModel::new(&city, 20_000.0, 1);
        let b = DemandModel::new(&city, 20_000.0, 1);
        assert_eq!(a.archetypes(), b.archetypes());
    }

    #[test]
    fn profile_covers_all_slots() {
        assert_eq!(TimeSlot::all().count() as u32, SLOTS_PER_DAY);
        for s in TimeSlot::all() {
            assert!(hourly_profile(s.hour().0) > 0.0);
        }
    }
}
