//! Small distribution toolbox.
//!
//! The allowed dependency set includes `rand` but not `rand_distr`, so the
//! handful of distributions the generators need are implemented here:
//! Poisson (arrival counts), exponential (inter-event gaps / skew),
//! log-normal (trip lengths), and a standard normal via Box–Muller.

use rand::Rng;

/// Samples a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard the log against u1 == 0.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `N(mean, sd²)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// Samples a Poisson random variate with rate `lambda`.
///
/// Uses Knuth's product method for small rates and a normal approximation
/// (with continuity correction) above 30, which is ample for per-slot
/// arrival counts.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u32 {
    assert!(lambda >= 0.0, "negative Poisson rate {lambda}");
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let x = normal(rng, lambda, lambda.sqrt());
        return x.round().max(0.0) as u32;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // Defensive cap: the loop terminates with probability 1, but a bound
        // keeps a pathological RNG from spinning.
        if k > 10_000 {
            return k;
        }
    }
}

/// Samples an exponential with the given `mean`.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "non-positive exponential mean {mean}");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Samples a log-normal such that the *underlying normal* has parameters
/// `mu` and `sigma` (i.e. `exp(N(mu, sigma²))`).
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Log-normal parameterized by its own mean and coefficient of variation,
/// which is how the trip-length model is calibrated.
pub fn log_normal_mean_cv<R: Rng + ?Sized>(rng: &mut R, mean: f64, cv: f64) -> f64 {
    assert!(mean > 0.0 && cv > 0.0);
    let sigma2 = (1.0 + cv * cv).ln();
    let mu = mean.ln() - sigma2 / 2.0;
    log_normal(rng, mu, sigma2.sqrt())
}

/// Samples an index `0..weights.len()` proportionally to `weights`.
///
/// # Panics
/// Panics if `weights` is empty or all weights are non-positive.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "empty weight vector");
    let total: f64 = weights.iter().filter(|w| w.is_sign_positive()).sum();
    assert!(total > 0.0, "all weights non-positive");
    let mut x = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        if x < w {
            return i;
        }
        x -= w;
    }
    // Floating-point remainder: return the last positive-weight index.
    weights
        .iter()
        .rposition(|&w| w > 0.0)
        .expect("checked above")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn poisson_zero_rate_is_zero() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn poisson_small_rate_mean() {
        let mut r = rng();
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| u64::from(poisson(&mut r, 3.5))).sum();
        let mean = sum as f64 / f64::from(n);
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_rate_mean_and_var() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| f64::from(poisson(&mut r, 100.0))).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
        assert!((var - 100.0).abs() < 10.0, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 7.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 7.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn exponential_is_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(exponential(&mut r, 1.0) > 0.0);
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn log_normal_mean_cv_calibration() {
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| log_normal_mean_cv(&mut r, 8.0, 0.8))
            .sum::<f64>()
            / f64::from(n);
        assert!((mean - 8.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(log_normal(&mut r, 0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = rng();
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[weighted_index(&mut r, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = f64::from(counts[2]) / f64::from(counts[0]);
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "empty weight vector")]
    fn weighted_index_rejects_empty() {
        let mut r = rng();
        let _ = weighted_index(&mut r, &[]);
    }

    #[test]
    #[should_panic(expected = "all weights non-positive")]
    fn weighted_index_rejects_zero_total() {
        let mut r = rng();
        let _ = weighted_index(&mut r, &[0.0, 0.0]);
    }
}
