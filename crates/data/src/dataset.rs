//! Whole-dataset assembly and (de)serialization.
//!
//! The paper's pipeline starts from raw feeds — GPS pings and transaction
//! records — and *infers* higher-level events from them. This module closes
//! the loop for the synthetic world: it can synthesize a GPS ping stream
//! from a transaction log (linear interpolation along each trip, idle pings
//! between trips), and write/read the whole Table I dataset as CSV
//! sections, so tooling written against the real feeds runs unchanged.

use crate::schema::{GpsRecord, ParseError, PartitionRecord, StationRecord, TransactionRecord};
use std::io::{self, BufRead, Write};

/// A complete synthetic dataset in the paper's Table I shape.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// GPS pings, time-ordered per vehicle.
    pub gps: Vec<GpsRecord>,
    /// Completed trips.
    pub transactions: Vec<TransactionRecord>,
    /// Charging-station metadata.
    pub stations: Vec<StationRecord>,
    /// Urban-partition metadata.
    pub partition: Vec<PartitionRecord>,
}

/// Synthesizes a GPS ping stream from a transaction log: one ping every
/// `interval_minutes` along each trip (positions linearly interpolated
/// pickup → drop-off, `occupied = true`), plus one vacant ping at each
/// drop-off.
pub fn gps_from_transactions(
    transactions: &[TransactionRecord],
    interval_minutes: u32,
) -> Vec<GpsRecord> {
    assert!(interval_minutes > 0, "zero ping interval");
    let mut out = Vec::new();
    for t in transactions {
        let duration = t.duration_minutes().max(1);
        let speed = t.operating_km / (f64::from(duration) / 60.0);
        let mut m = 0;
        while m <= duration {
            let frac = f64::from(m) / f64::from(duration);
            let pos = t.pickup_pos.lerp(t.dropoff_pos, frac);
            let dx = t.dropoff_pos.x - t.pickup_pos.x;
            let dy = t.dropoff_pos.y - t.pickup_pos.y;
            let direction = dy.atan2(dx).to_degrees().rem_euclid(360.0);
            out.push(GpsRecord {
                vehicle_id: t.vehicle_id,
                position: pos,
                timestamp: t.pickup_time + m,
                direction_deg: direction,
                speed_kmh: speed,
                occupied: true,
            });
            m += interval_minutes;
        }
        out.push(GpsRecord {
            vehicle_id: t.vehicle_id,
            position: t.dropoff_pos,
            timestamp: t.dropoff_time,
            direction_deg: 0.0,
            speed_kmh: 0.0,
            occupied: false,
        });
    }
    out
}

/// Section markers in the serialized dataset.
const SECTIONS: [&str; 4] = ["#GPS", "#TRANSACTIONS", "#STATIONS", "#PARTITION"];

impl Dataset {
    /// Writes the dataset as four CSV sections with `#SECTION` headers.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        writeln!(w, "{}", SECTIONS[0])?;
        for r in &self.gps {
            writeln!(w, "{}", r.to_csv())?;
        }
        writeln!(w, "{}", SECTIONS[1])?;
        for r in &self.transactions {
            writeln!(w, "{}", r.to_csv())?;
        }
        writeln!(w, "{}", SECTIONS[2])?;
        for r in &self.stations {
            writeln!(w, "{}", r.to_csv())?;
        }
        writeln!(w, "{}", SECTIONS[3])?;
        for r in &self.partition {
            writeln!(w, "{}", r.to_csv())?;
        }
        Ok(())
    }

    /// Parses a dataset previously produced by [`Self::write_to`].
    pub fn read_from(r: &mut impl BufRead) -> Result<Dataset, ParseError> {
        let mut out = Dataset::default();
        let mut section: Option<usize> = None;
        for line in r.lines() {
            let line = line.map_err(|e| ParseError {
                message: format!("io error: {e}"),
            })?;
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            if let Some(idx) = SECTIONS.iter().position(|&s| s == line) {
                section = Some(idx);
                continue;
            }
            match section {
                Some(0) => out.gps.push(GpsRecord::from_csv(line)?),
                Some(1) => out.transactions.push(TransactionRecord::from_csv(line)?),
                Some(2) => out.stations.push(StationRecord::from_csv(line)?),
                Some(3) => out.partition.push(PartitionRecord::from_csv(line)?),
                _ => {
                    return Err(ParseError {
                        message: format!("data before any section header: {line:?}"),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Total record count across all sections.
    pub fn len(&self) -> usize {
        self.gps.len() + self.transactions.len() + self.stations.len() + self.partition.len()
    }

    /// Whether the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Basic integrity checks on a dataset: trips end after they start, GPS
/// timestamps are plausible, ids are consistent. Returns the list of
/// human-readable violations (empty = clean).
pub fn validate(dataset: &Dataset) -> Vec<String> {
    let mut issues = Vec::new();
    for (i, t) in dataset.transactions.iter().enumerate() {
        if t.dropoff_time < t.pickup_time {
            issues.push(format!("transaction {i}: drop-off before pickup"));
        }
        if t.operating_km < 0.0 || t.fare_cny < 0.0 {
            issues.push(format!("transaction {i}: negative distance or fare"));
        }
    }
    for (i, g) in dataset.gps.iter().enumerate() {
        if !g.position.x.is_finite() || !g.position.y.is_finite() {
            issues.push(format!("gps {i}: non-finite position"));
        }
        if g.speed_kmh < 0.0 || g.speed_kmh > 150.0 {
            issues.push(format!("gps {i}: implausible speed {}", g.speed_kmh));
        }
    }
    for (i, s) in dataset.stations.iter().enumerate() {
        if s.fast_points == 0 {
            issues.push(format!("station {i}: zero charging points"));
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairmove_city::{Point, RegionId, SimTime, StationId};

    fn sample() -> Dataset {
        let transactions = vec![TransactionRecord {
            vehicle_id: 7,
            pickup_time: SimTime(100),
            dropoff_time: SimTime(120),
            pickup_pos: Point::new(0.0, 0.0),
            dropoff_pos: Point::new(4.0, 3.0),
            operating_km: 6.0,
            cruising_km: 1.0,
            fare_cny: 21.4,
        }];
        let gps = gps_from_transactions(&transactions, 5);
        Dataset {
            gps,
            transactions,
            stations: vec![StationRecord {
                station_id: StationId(0),
                name: "S0".into(),
                position: Point::new(1.0, 1.0),
                fast_points: 10,
            }],
            partition: vec![PartitionRecord {
                region_id: RegionId(0),
                centroid: Point::new(0.5, 0.5),
                area_km2: 2.0,
            }],
        }
    }

    #[test]
    fn gps_interpolates_along_the_trip() {
        let d = sample();
        // 20-minute trip, ping every 5 → pings at 0,5,10,15,20 + vacant.
        assert_eq!(d.gps.len(), 6);
        let mid = &d.gps[2];
        assert_eq!(mid.timestamp, SimTime(110));
        assert!((mid.position.x - 2.0).abs() < 1e-9);
        assert!((mid.position.y - 1.5).abs() < 1e-9);
        assert!(mid.occupied);
        assert!(!d.gps.last().unwrap().occupied);
    }

    #[test]
    fn gps_speed_is_trip_average() {
        let d = sample();
        // 6 km over 20 min = 18 km/h.
        assert!((d.gps[0].speed_kmh - 18.0).abs() < 1e-9);
    }

    #[test]
    fn round_trips_through_csv_sections() {
        let d = sample();
        let mut buf = Vec::new();
        d.write_to(&mut buf).unwrap();
        let parsed = Dataset::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(parsed.gps.len(), d.gps.len());
        assert_eq!(parsed.transactions.len(), 1);
        assert_eq!(parsed.stations.len(), 1);
        assert_eq!(parsed.partition.len(), 1);
        assert_eq!(parsed.transactions[0].vehicle_id, 7);
        assert_eq!(parsed.len(), d.len());
    }

    #[test]
    fn read_rejects_headerless_data() {
        let junk = b"1,2,3\n".to_vec();
        let err = Dataset::read_from(&mut junk.as_slice()).unwrap_err();
        assert!(err.message.contains("before any section"));
    }

    #[test]
    fn validate_flags_broken_records() {
        let mut d = sample();
        d.transactions[0].dropoff_time = SimTime(50); // before pickup
        d.stations[0].fast_points = 0;
        let issues = validate(&d);
        assert_eq!(issues.len(), 2, "{issues:?}");
    }

    #[test]
    fn validate_accepts_clean_dataset() {
        assert!(validate(&sample()).is_empty());
    }
}
