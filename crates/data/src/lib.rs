//! Synthetic data substrate for the FairMove reproduction.
//!
//! The paper evaluates on one month of proprietary Shenzhen data: 2.48 B GPS
//! records and 23.2 M trips from 20,130 BYD e6 e-taxis, 123 charging
//! stations, the 491-region census partition, and the city's time-of-use
//! charging tariff. None of that is public, so this crate builds calibrated
//! generative models that reproduce the *published marginals* the paper
//! reports in Section II (Figs. 2–8) and exposes the same record schemas
//! (Table I):
//!
//! * [`pricing::ChargingPricing`] — the three-band time-of-use tariff
//!   (off-peak 0.9 / flat 1.2 / peak 1.6 CNY/kWh, Fig. 2) and cost
//!   integration over a charging interval (the paper's `λ · T_charge`
//!   three-vector product in Eq. 2);
//! * [`demand::DemandModel`] — spatio-temporal passenger intensity with
//!   morning/evening rush peaks, a late-night trough, and region archetypes
//!   (downtown, suburb, airport hotspot) driving the Fig. 7 revenue map;
//! * [`trips::TripGenerator`] — Poisson arrivals per (region, slot) with
//!   gravity-model destinations and metered fares ([`revenue`]);
//! * [`schema`] — the five Table I record types with CSV round-tripping;
//! * [`energy::EnergyModel`] — the BYD e6 battery/consumption constants;
//! * [`random`] — the small distribution toolbox (Poisson, log-normal,
//!   exponential) the generators are built from.

pub mod dataset;
pub mod demand;
pub mod energy;
pub mod pricing;
pub mod random;
pub mod revenue;
pub mod schema;
pub mod trips;

pub use dataset::Dataset;
pub use demand::{DemandModel, RegionArchetype};
pub use energy::EnergyModel;
pub use pricing::{ChargingPricing, PriceBand};
pub use revenue::FareModel;
pub use trips::{PassengerRequest, TripGenerator};
