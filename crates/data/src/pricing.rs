//! Time-of-use charging tariff (the paper's Fig. 2 and the `λ` vector of Eq. 2).
//!
//! Shenzhen bills e-taxi charging in three bands: off-peak 0.9, flat (semi-
//! peak) 1.2, and peak 1.6 CNY/kWh. The exact band boundaries are chosen so
//! that the cheap windows fall at 0:00–7:00, 12:00–14:00, and 17:00–18:00 —
//! the windows in which the paper observes intensive charging peaks (Fig. 4:
//! 2:00–6:00, 12:00–14:00, 17:00–18:00), because price-chasing drivers herd
//! into them.

use fairmove_city::{HourOfDay, SimTime};
use serde::{Deserialize, Serialize};

/// One tariff band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PriceBand {
    /// Lowest rate (night / midday valley).
    OffPeak,
    /// Medium ("semi-peak"/"flat") rate.
    Flat,
    /// Highest rate.
    Peak,
}

impl PriceBand {
    /// Index into per-band arrays: `[Peak, Flat, OffPeak]`, matching the
    /// paper's `λ = [λ_p, λ_f, λ_o]` ordering.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            PriceBand::Peak => 0,
            PriceBand::Flat => 1,
            PriceBand::OffPeak => 2,
        }
    }
}

/// The time-of-use tariff: a band per hour of day and a rate per band.
///
/// ```
/// use fairmove_data::ChargingPricing;
/// use fairmove_city::SimTime;
/// let tariff = ChargingPricing::default();
/// // One off-peak hour at 40 kW costs 40 kWh x 0.9 CNY.
/// let cost = tariff.charging_cost(
///     SimTime::from_dhm(0, 2, 0),
///     SimTime::from_dhm(0, 3, 0),
///     40.0,
/// );
/// assert!((cost - 36.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChargingPricing {
    /// Rate per band, CNY/kWh, ordered `[peak, flat, off]` like the paper's λ.
    pub rates: [f64; 3],
    /// Band assignment per hour of day.
    pub band_by_hour: [PriceBand; 24],
}

impl Default for ChargingPricing {
    fn default() -> Self {
        use PriceBand::*;
        let mut band = [Flat; 24];
        for (h, b) in band.iter_mut().enumerate() {
            *b = match h {
                0..=6 => OffPeak,   // night valley
                7 => Flat,          // morning shoulder
                8..=11 => Peak,     // morning consumption peak
                12..=13 => OffPeak, // midday valley
                14..=16 => Flat,
                17 => OffPeak,   // pre-evening dip
                18..=22 => Peak, // evening consumption peak
                _ => OffPeak,    // 23:00
            };
        }
        ChargingPricing {
            rates: [1.6, 1.2, 0.9],
            band_by_hour: band,
        }
    }
}

impl ChargingPricing {
    /// The band in effect at `hour`.
    #[inline]
    pub fn band_at(&self, hour: HourOfDay) -> PriceBand {
        self.band_by_hour[hour.index()]
    }

    /// The rate in CNY/kWh at `hour`.
    #[inline]
    pub fn rate_at(&self, hour: HourOfDay) -> f64 {
        self.rates[self.band_at(hour).index()]
    }

    /// The rate in effect at an absolute sim time.
    #[inline]
    pub fn rate_at_time(&self, t: SimTime) -> f64 {
        self.rate_at(t.hour_of_day())
    }

    /// Splits a charging interval `[start, end)` into per-band minutes:
    /// the paper's `T_charge = [T_p, T_f, T_o]` vector (Eq. 2), in minutes.
    pub fn band_minutes(&self, start: SimTime, end: SimTime) -> [u32; 3] {
        let mut out = [0u32; 3];
        let mut t = start;
        while t < end {
            // Advance to the next hour boundary or the interval end.
            let minute = t.minutes();
            let next_hour_boundary = (minute / 60 + 1) * 60;
            let step_end = next_hour_boundary.min(end.minutes());
            let band = self.band_at(t.hour_of_day());
            out[band.index()] += step_end - minute;
            t = SimTime(step_end);
        }
        out
    }

    /// Cost of charging at constant `power_kw` over `[start, end)`:
    /// `λ · T_charge` with T in hours (Eq. 2), in CNY.
    pub fn charging_cost(&self, start: SimTime, end: SimTime, power_kw: f64) -> f64 {
        let mins = self.band_minutes(start, end);
        let mut cost = 0.0;
        for (i, &m) in mins.iter().enumerate() {
            cost += self.rates[i] * (f64::from(m) / 60.0) * power_kw;
        }
        cost
    }

    /// Cheapest rate across the day, CNY/kWh.
    pub fn min_rate(&self) -> f64 {
        self.rates.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Hours (0..24) whose band is `band`.
    pub fn hours_in_band(&self, band: PriceBand) -> Vec<HourOfDay> {
        HourOfDay::all()
            .filter(|h| self.band_at(*h) == band)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_rates_match_paper() {
        let p = ChargingPricing::default();
        assert_eq!(p.rates, [1.6, 1.2, 0.9]);
        assert_eq!(p.min_rate(), 0.9);
    }

    #[test]
    fn cheap_windows_match_fig4_peaks() {
        // The paper's observed charging peaks (2–6, 12–14, 17–18) must be
        // off-peak hours in our tariff for price-chasing to reproduce them.
        let p = ChargingPricing::default();
        for h in [2u8, 3, 4, 5, 12, 13, 17] {
            assert_eq!(p.band_at(HourOfDay(h)), PriceBand::OffPeak, "hour {h}");
        }
        // Rush-adjacent hours are expensive.
        for h in [9u8, 10, 19, 20] {
            assert_eq!(p.band_at(HourOfDay(h)), PriceBand::Peak, "hour {h}");
        }
    }

    #[test]
    fn band_minutes_single_band() {
        let p = ChargingPricing::default();
        // 02:00-03:30 is entirely off-peak.
        let mins = p.band_minutes(SimTime::from_dhm(0, 2, 0), SimTime::from_dhm(0, 3, 30));
        assert_eq!(mins, [0, 0, 90]);
    }

    #[test]
    fn band_minutes_spanning_bands() {
        let p = ChargingPricing::default();
        // 06:30-08:30: 30 min off (6:30-7), 60 min flat (7-8), 30 min peak (8-8:30).
        let mins = p.band_minutes(SimTime::from_dhm(0, 6, 30), SimTime::from_dhm(0, 8, 30));
        assert_eq!(mins, [30, 60, 30]);
    }

    #[test]
    fn band_minutes_empty_interval() {
        let p = ChargingPricing::default();
        let t = SimTime::from_dhm(0, 5, 0);
        assert_eq!(p.band_minutes(t, t), [0, 0, 0]);
    }

    #[test]
    fn band_minutes_crossing_midnight() {
        let p = ChargingPricing::default();
        // 23:30 day 0 -> 00:30 day 1: all off-peak (23:00 and 0:00-7:00).
        let mins = p.band_minutes(SimTime::from_dhm(0, 23, 30), SimTime::from_dhm(1, 0, 30));
        assert_eq!(mins, [0, 0, 60]);
    }

    #[test]
    fn charging_cost_off_peak_hour() {
        let p = ChargingPricing::default();
        // 1 hour at 40 kW off-peak = 40 kWh * 0.9 = 36 CNY.
        let cost = p.charging_cost(SimTime::from_dhm(0, 2, 0), SimTime::from_dhm(0, 3, 0), 40.0);
        assert!((cost - 36.0).abs() < 1e-9);
    }

    #[test]
    fn charging_cost_peak_costs_more() {
        let p = ChargingPricing::default();
        let off = p.charging_cost(SimTime::from_dhm(0, 2, 0), SimTime::from_dhm(0, 3, 0), 40.0);
        let peak = p.charging_cost(
            SimTime::from_dhm(0, 9, 0),
            SimTime::from_dhm(0, 10, 0),
            40.0,
        );
        assert!((peak / off - 1.6 / 0.9).abs() < 1e-9);
    }

    #[test]
    fn hours_partition_into_bands() {
        let p = ChargingPricing::default();
        let total = p.hours_in_band(PriceBand::Peak).len()
            + p.hours_in_band(PriceBand::Flat).len()
            + p.hours_in_band(PriceBand::OffPeak).len();
        assert_eq!(total, 24);
    }

    proptest! {
        #[test]
        fn band_minutes_sum_to_duration(start in 0u32..2880, len in 0u32..1440) {
            let p = ChargingPricing::default();
            let s = SimTime(start);
            let e = SimTime(start + len);
            let mins = p.band_minutes(s, e);
            prop_assert_eq!(mins.iter().sum::<u32>(), len);
        }

        #[test]
        fn cost_is_monotone_in_duration(start in 0u32..1440, len in 1u32..600) {
            let p = ChargingPricing::default();
            let s = SimTime(start);
            let shorter = p.charging_cost(s, SimTime(start + len), 40.0);
            let longer = p.charging_cost(s, SimTime(start + len + 30), 40.0);
            prop_assert!(longer > shorter);
        }

        #[test]
        fn cost_bounded_by_band_extremes(start in 0u32..1440, len in 1u32..600) {
            let p = ChargingPricing::default();
            let s = SimTime(start);
            let e = SimTime(start + len);
            let cost = p.charging_cost(s, e, 40.0);
            let hours = f64::from(len) / 60.0;
            prop_assert!(cost >= 0.9 * hours * 40.0 - 1e-9);
            prop_assert!(cost <= 1.6 * hours * 40.0 + 1e-9);
        }
    }
}
