//! Simulation time: minutes since simulation start, 10-minute decision slots.
//!
//! The paper discretizes a day into `T = 144` slots of 10 minutes each
//! (Section IV-A, "we set 10 minutes as a time slot ... one day is divided
//! into T = 144 time slots"). Displacement decisions are made once per slot;
//! everything else (trips, queue waits, charging) is tracked in integer
//! minutes.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Minutes in one decision slot.
pub const SLOT_MINUTES: u32 = 10;
/// Decision slots per day (the paper's `T = 144`).
pub const SLOTS_PER_DAY: u32 = 144;
/// Minutes per day.
pub const MINUTES_PER_DAY: u32 = SLOT_MINUTES * SLOTS_PER_DAY;

/// An absolute simulation time, in whole minutes since simulation start.
///
/// Simulation always starts at midnight of day 0, so hour-of-day and
/// slot-of-day derive directly from the minute count.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u32);

impl SimTime {
    /// Midnight of day 0.
    pub const ZERO: SimTime = SimTime(0);

    /// Time from a (day, hour, minute) triple.
    pub fn from_dhm(day: u32, hour: u32, minute: u32) -> Self {
        assert!(hour < 24, "hour out of range: {hour}");
        assert!(minute < 60, "minute out of range: {minute}");
        SimTime(day * MINUTES_PER_DAY + hour * 60 + minute)
    }

    /// Total minutes since start.
    #[inline]
    pub fn minutes(self) -> u32 {
        self.0
    }

    /// Day index (0-based).
    #[inline]
    pub fn day(self) -> u32 {
        self.0 / MINUTES_PER_DAY
    }

    /// Minute within the current day, `0..1440`.
    #[inline]
    pub fn minute_of_day(self) -> u32 {
        self.0 % MINUTES_PER_DAY
    }

    /// Hour of day, `0..24`.
    #[inline]
    pub fn hour_of_day(self) -> HourOfDay {
        HourOfDay((self.minute_of_day() / 60) as u8)
    }

    /// Decision slot within the current day, `0..144`.
    #[inline]
    pub fn slot_of_day(self) -> TimeSlot {
        TimeSlot((self.minute_of_day() / SLOT_MINUTES) as u16)
    }

    /// Absolute slot index since simulation start.
    #[inline]
    pub fn absolute_slot(self) -> u32 {
        self.0 / SLOT_MINUTES
    }

    /// Fraction of the day elapsed, `[0, 1)`.
    #[inline]
    pub fn day_fraction(self) -> f64 {
        f64::from(self.minute_of_day()) / f64::from(MINUTES_PER_DAY)
    }
}

impl Add<u32> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, minutes: u32) -> SimTime {
        SimTime(self.0 + minutes)
    }
}

impl AddAssign<u32> for SimTime {
    #[inline]
    fn add_assign(&mut self, minutes: u32) {
        self.0 += minutes;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u32;
    /// Minutes elapsed from `rhs` to `self`.
    ///
    /// # Panics
    /// Panics in debug builds if `rhs > self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> u32 {
        debug_assert!(rhs.0 <= self.0, "negative duration: {rhs:?} > {self:?}");
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.minute_of_day();
        write!(f, "d{} {:02}:{:02}", self.day(), m / 60, m % 60)
    }
}

/// An hour of day, `0..24`. Used for pricing bands and hourly metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HourOfDay(pub u8);

impl HourOfDay {
    /// All 24 hours in order.
    pub fn all() -> impl Iterator<Item = HourOfDay> {
        (0..24).map(HourOfDay)
    }

    /// The hour as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether `self` lies in the half-open hour range `[start, end)`,
    /// wrapping past midnight when `start > end` (e.g. 23–6).
    pub fn in_range(self, start: u8, end: u8) -> bool {
        if start <= end {
            self.0 >= start && self.0 < end
        } else {
            self.0 >= start || self.0 < end
        }
    }
}

impl fmt::Display for HourOfDay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02}:00", self.0)
    }
}

/// A decision slot within a day, `0..144`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TimeSlot(pub u16);

impl TimeSlot {
    /// The slot as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The first minute of this slot within the day.
    #[inline]
    pub fn start_minute(self) -> u32 {
        u32::from(self.0) * SLOT_MINUTES
    }

    /// The hour of day this slot falls in.
    #[inline]
    pub fn hour(self) -> HourOfDay {
        HourOfDay((self.start_minute() / 60) as u8)
    }

    /// All slots of a day in order.
    pub fn all() -> impl Iterator<Item = TimeSlot> {
        (0..SLOTS_PER_DAY as u16).map(TimeSlot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(MINUTES_PER_DAY, 1440);
        assert_eq!(SLOTS_PER_DAY, 144);
    }

    #[test]
    fn from_dhm_round_trips() {
        let t = SimTime::from_dhm(2, 13, 25);
        assert_eq!(t.day(), 2);
        assert_eq!(t.hour_of_day(), HourOfDay(13));
        assert_eq!(t.minute_of_day(), 13 * 60 + 25);
    }

    #[test]
    #[should_panic(expected = "hour out of range")]
    fn from_dhm_rejects_bad_hour() {
        let _ = SimTime::from_dhm(0, 24, 0);
    }

    #[test]
    fn slot_of_day_boundaries() {
        assert_eq!(SimTime::from_dhm(0, 0, 0).slot_of_day(), TimeSlot(0));
        assert_eq!(SimTime::from_dhm(0, 0, 9).slot_of_day(), TimeSlot(0));
        assert_eq!(SimTime::from_dhm(0, 0, 10).slot_of_day(), TimeSlot(1));
        assert_eq!(SimTime::from_dhm(0, 23, 50).slot_of_day(), TimeSlot(143));
    }

    #[test]
    fn absolute_slot_crosses_days() {
        assert_eq!(SimTime::from_dhm(1, 0, 0).absolute_slot(), 144);
        assert_eq!(SimTime::from_dhm(1, 0, 5).absolute_slot(), 144);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_dhm(0, 10, 0);
        let u = t + 75;
        assert_eq!(u.hour_of_day(), HourOfDay(11));
        assert_eq!(u - t, 75);
        let mut v = t;
        v += 30;
        assert_eq!(v.minute_of_day(), 10 * 60 + 30);
    }

    #[test]
    fn hour_in_range_plain_and_wrapping() {
        assert!(HourOfDay(3).in_range(2, 6));
        assert!(!HourOfDay(6).in_range(2, 6));
        // wrapping range 23:00-06:00
        assert!(HourOfDay(23).in_range(23, 6));
        assert!(HourOfDay(2).in_range(23, 6));
        assert!(!HourOfDay(12).in_range(23, 6));
    }

    #[test]
    fn slot_hour_mapping() {
        assert_eq!(TimeSlot(0).hour(), HourOfDay(0));
        assert_eq!(TimeSlot(5).hour(), HourOfDay(0));
        assert_eq!(TimeSlot(6).hour(), HourOfDay(1));
        assert_eq!(TimeSlot(143).hour(), HourOfDay(23));
    }

    #[test]
    fn all_slots_count() {
        assert_eq!(TimeSlot::all().count(), 144);
        assert_eq!(HourOfDay::all().count(), 24);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_dhm(1, 9, 5).to_string(), "d1 09:05");
        assert_eq!(HourOfDay(7).to_string(), "07:00");
    }

    #[test]
    fn day_fraction_bounds() {
        assert_eq!(SimTime::ZERO.day_fraction(), 0.0);
        let almost_midnight = SimTime::from_dhm(0, 23, 59);
        assert!(almost_midnight.day_fraction() < 1.0);
        assert!(almost_midnight.day_fraction() > 0.99);
    }

    proptest! {
        #[test]
        fn slot_and_hour_agree(minutes in 0u32..(30 * MINUTES_PER_DAY)) {
            let t = SimTime(minutes);
            prop_assert_eq!(t.slot_of_day().hour(), t.hour_of_day());
        }

        #[test]
        fn addition_preserves_duration(minutes in 0u32..1_000_000, d in 0u32..100_000) {
            let t = SimTime(minutes);
            prop_assert_eq!((t + d) - t, d);
        }

        #[test]
        fn absolute_slot_monotone(a in 0u32..1_000_000, b in 0u32..1_000_000) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(SimTime(lo).absolute_slot() <= SimTime(hi).absolute_slot());
        }
    }
}
