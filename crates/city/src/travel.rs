//! Travel-time and driving-distance model.
//!
//! The algorithms need two things from the road network: how long it takes a
//! taxi to drive between two points at a given hour, and how much energy that
//! consumes (via distance). Real routing is replaced by an L1-metric detour
//! model with an hour-of-day congestion profile calibrated to urban China:
//! free-flow ~40 km/h off-peak, dropping toward ~20 km/h in rush hours.

use crate::geometry::Point;
use crate::time::{HourOfDay, SimTime};
use serde::{Deserialize, Serialize};

/// Converts distances between points into driving distance and travel time.
///
/// ```
/// use fairmove_city::{Point, SimTime, TravelModel};
/// let model = TravelModel::default();
/// let rush = model.travel_minutes(Point::new(0.0, 0.0), Point::new(10.0, 0.0),
///                                 SimTime::from_dhm(0, 8, 0));
/// let night = model.travel_minutes(Point::new(0.0, 0.0), Point::new(10.0, 0.0),
///                                  SimTime::from_dhm(0, 3, 0));
/// assert!(rush > night);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TravelModel {
    /// Multiplier from straight-line Manhattan distance to realized driving
    /// distance (signal detours, one-ways). Typically 1.1–1.4.
    pub detour_factor: f64,
    /// Mean driving speed per hour of day, km/h.
    pub speed_kmh_by_hour: [f64; 24],
}

impl Default for TravelModel {
    fn default() -> Self {
        // Congestion profile: fast at night, slow in the 7-9 and 17-19 rushes.
        let mut speed = [38.0f64; 24];
        for (h, s) in speed.iter_mut().enumerate() {
            *s = match h {
                0..=5 => 42.0,
                6 => 35.0,
                7..=9 => 22.0,
                10..=11 => 30.0,
                12..=13 => 28.0,
                14..=16 => 30.0,
                17..=19 => 21.0,
                20..=21 => 30.0,
                _ => 36.0,
            };
        }
        TravelModel {
            detour_factor: 1.2,
            speed_kmh_by_hour: speed,
        }
    }
}

impl TravelModel {
    /// Realized driving distance between two points, km.
    #[inline]
    pub fn driving_distance(&self, from: Point, to: Point) -> f64 {
        from.manhattan_distance(to) * self.detour_factor
    }

    /// Mean speed at `hour`, km/h.
    #[inline]
    pub fn speed_at(&self, hour: HourOfDay) -> f64 {
        self.speed_kmh_by_hour[hour.index()]
    }

    /// Travel time between two points departing at `at`, in whole minutes
    /// (at least 1 for distinct points; 0 only for zero distance).
    pub fn travel_minutes(&self, from: Point, to: Point, at: SimTime) -> u32 {
        let dist = self.driving_distance(from, to);
        if dist <= f64::EPSILON {
            return 0;
        }
        let speed = self.speed_at(at.hour_of_day());
        let minutes = dist / speed * 60.0;
        (minutes.ceil() as u32).max(1)
    }

    /// Travel time for a known driving distance departing at `at`, minutes.
    pub fn minutes_for_distance(&self, distance_km: f64, at: SimTime) -> u32 {
        if distance_km <= f64::EPSILON {
            return 0;
        }
        let speed = self.speed_at(at.hour_of_day());
        ((distance_km / speed * 60.0).ceil() as u32).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_distance_is_zero_minutes() {
        let m = TravelModel::default();
        let p = Point::new(3.0, 4.0);
        assert_eq!(m.travel_minutes(p, p, SimTime::ZERO), 0);
        assert_eq!(m.driving_distance(p, p), 0.0);
    }

    #[test]
    fn driving_distance_applies_detour() {
        let m = TravelModel::default();
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((m.driving_distance(a, b) - 7.0 * 1.2).abs() < 1e-12);
    }

    #[test]
    fn rush_hour_is_slower_than_night() {
        let m = TravelModel::default();
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let night = m.travel_minutes(a, b, SimTime::from_dhm(0, 3, 0));
        let rush = m.travel_minutes(a, b, SimTime::from_dhm(0, 8, 0));
        assert!(rush > night, "rush {rush} should exceed night {night}");
    }

    #[test]
    fn short_hops_take_at_least_one_minute() {
        let m = TravelModel::default();
        let a = Point::new(0.0, 0.0);
        let b = Point::new(0.01, 0.0);
        assert_eq!(m.travel_minutes(a, b, SimTime::ZERO), 1);
    }

    #[test]
    fn minutes_for_distance_matches_point_version() {
        let m = TravelModel::default();
        let a = Point::new(0.0, 0.0);
        let b = Point::new(5.0, 5.0);
        let t = SimTime::from_dhm(0, 10, 0);
        let d = m.driving_distance(a, b);
        assert_eq!(m.travel_minutes(a, b, t), m.minutes_for_distance(d, t));
    }

    #[test]
    fn default_profile_speeds_are_sane() {
        let m = TravelModel::default();
        for h in HourOfDay::all() {
            let s = m.speed_at(h);
            assert!((15.0..=60.0).contains(&s), "speed {s} at {h}");
        }
    }

    proptest! {
        #[test]
        fn travel_time_monotone_in_distance(x in 0.1..30.0f64, extra in 0.1..30.0f64, hour in 0u8..24) {
            let m = TravelModel::default();
            let t = SimTime::from_dhm(0, u32::from(hour), 0);
            let o = Point::new(0.0, 0.0);
            let near = m.travel_minutes(o, Point::new(x, 0.0), t);
            let far = m.travel_minutes(o, Point::new(x + extra, 0.0), t);
            prop_assert!(far >= near);
        }

        #[test]
        fn travel_time_is_symmetric(ax in 0.0..50.0f64, ay in 0.0..25.0f64,
                                    bx in 0.0..50.0f64, by in 0.0..25.0f64) {
            let m = TravelModel::default();
            let t = SimTime::from_dhm(0, 12, 0);
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            prop_assert_eq!(m.travel_minutes(a, b, t), m.travel_minutes(b, a, t));
        }
    }
}
