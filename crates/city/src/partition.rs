//! Seeded Voronoi urban partition.
//!
//! The paper uses the Shenzhen census partition: 491 irregular regions whose
//! boundaries follow the city's geography. We reproduce the *structure* that
//! the algorithms depend on — an irregular planar partition with an adjacency
//! graph and heterogeneous region sizes — with a Voronoi diagram over random
//! seed points, rasterized on a fine lattice to extract adjacency.
//!
//! Determinism: the same `(bounds, n_regions, seed)` always produces the same
//! partition, so every experiment is repeatable.

use crate::geometry::{Point, Rect};
use crate::ids::RegionId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Lattice resolution used to rasterize the Voronoi diagram for adjacency
/// extraction. 256×128 cells is fine enough that every region of a
/// ≤500-region partition touches its true neighbours.
const LATTICE_X: usize = 256;
const LATTICE_Y: usize = 128;

/// One region of the urban partition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Region {
    /// Dense region id.
    pub id: RegionId,
    /// Voronoi seed / representative point. Taxis displaced to a region
    /// travel to this point.
    pub centroid: Point,
    /// Approximate area in km² (lattice-cell count × cell area).
    pub area_km2: f64,
    /// Ids of regions sharing a boundary with this one, sorted ascending.
    pub neighbors: Vec<RegionId>,
}

/// A Voronoi partition of the city into regions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UrbanPartition {
    bounds: Rect,
    regions: Vec<Region>,
}

impl UrbanPartition {
    /// Generates a partition of `bounds` into `n_regions` Voronoi regions
    /// using the RNG `seed`.
    ///
    /// # Panics
    /// Panics if `n_regions` is zero or exceeds `u16::MAX`.
    pub fn generate(bounds: Rect, n_regions: usize, seed: u64) -> Self {
        assert!(n_regions > 0, "need at least one region");
        assert!(n_regions <= u16::MAX as usize, "too many regions");
        let mut rng = StdRng::seed_from_u64(seed);

        // Seeds are denser near the city centre (real census blocks are
        // smaller downtown): mix a uniform cloud with a centre-biased cloud.
        let center = bounds.center();
        let seeds: Vec<Point> = (0..n_regions)
            .map(|i| {
                if i % 3 == 0 {
                    // Centre-biased: lerp a uniform point halfway to centre.
                    let p = Point::new(
                        rng.gen_range(bounds.min.x..bounds.max.x),
                        rng.gen_range(bounds.min.y..bounds.max.y),
                    );
                    p.lerp(center, rng.gen_range(0.2..0.6))
                } else {
                    Point::new(
                        rng.gen_range(bounds.min.x..bounds.max.x),
                        rng.gen_range(bounds.min.y..bounds.max.y),
                    )
                }
            })
            .collect();

        // Rasterize: assign each lattice cell to its nearest seed.
        let mut owner = vec![0u16; LATTICE_X * LATTICE_Y];
        let cell_w = bounds.width() / LATTICE_X as f64;
        let cell_h = bounds.height() / LATTICE_Y as f64;
        for gy in 0..LATTICE_Y {
            for gx in 0..LATTICE_X {
                let p = Point::new(
                    bounds.min.x + (gx as f64 + 0.5) * cell_w,
                    bounds.min.y + (gy as f64 + 0.5) * cell_h,
                );
                owner[gy * LATTICE_X + gx] = nearest_seed(&seeds, p);
            }
        }

        // Extract per-region cell counts and adjacency from the raster.
        let mut cell_count = vec![0usize; n_regions];
        let mut adjacency = vec![std::collections::BTreeSet::new(); n_regions];
        for gy in 0..LATTICE_Y {
            for gx in 0..LATTICE_X {
                let o = owner[gy * LATTICE_X + gx] as usize;
                cell_count[o] += 1;
                if gx + 1 < LATTICE_X {
                    let right = owner[gy * LATTICE_X + gx + 1] as usize;
                    if right != o {
                        adjacency[o].insert(right as u16);
                        adjacency[right].insert(o as u16);
                    }
                }
                if gy + 1 < LATTICE_Y {
                    let down = owner[(gy + 1) * LATTICE_X + gx] as usize;
                    if down != o {
                        adjacency[o].insert(down as u16);
                        adjacency[down].insert(o as u16);
                    }
                }
            }
        }

        let cell_area = cell_w * cell_h;
        let regions = seeds
            .into_iter()
            .enumerate()
            .map(|(i, centroid)| Region {
                id: RegionId(i as u16),
                centroid,
                area_km2: cell_count[i] as f64 * cell_area,
                neighbors: adjacency[i].iter().map(|&n| RegionId(n)).collect(),
            })
            .collect();

        UrbanPartition { bounds, regions }
    }

    /// Generates a regular `nx × ny` square-grid partition of `bounds`.
    ///
    /// The paper contrasts its irregular census partition against
    /// "grid-based methods (e.g., square-grid and hexagonal-grid)"; this
    /// constructor provides the square-grid alternative so the choice can
    /// be ablated. Adjacency is 4-connected.
    ///
    /// # Panics
    /// Panics if `nx` or `ny` is zero or `nx * ny` exceeds `u16::MAX`.
    pub fn generate_grid(bounds: Rect, nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "need at least one cell per axis");
        assert!(nx * ny <= u16::MAX as usize, "too many cells");
        let cell_w = bounds.width() / nx as f64;
        let cell_h = bounds.height() / ny as f64;
        let idx = |x: usize, y: usize| (y * nx + x) as u16;
        let regions = (0..ny)
            .flat_map(|y| (0..nx).map(move |x| (x, y)))
            .map(|(x, y)| {
                let centroid = Point::new(
                    bounds.min.x + (x as f64 + 0.5) * cell_w,
                    bounds.min.y + (y as f64 + 0.5) * cell_h,
                );
                let mut neighbors = Vec::with_capacity(4);
                if x > 0 {
                    neighbors.push(RegionId(idx(x - 1, y)));
                }
                if x + 1 < nx {
                    neighbors.push(RegionId(idx(x + 1, y)));
                }
                if y > 0 {
                    neighbors.push(RegionId(idx(x, y - 1)));
                }
                if y + 1 < ny {
                    neighbors.push(RegionId(idx(x, y + 1)));
                }
                neighbors.sort();
                Region {
                    id: RegionId(idx(x, y)),
                    centroid,
                    area_km2: cell_w * cell_h,
                    neighbors,
                }
            })
            .collect();
        UrbanPartition { bounds, regions }
    }

    /// Generates a hexagonal-grid partition: offset rows of hexagon centres
    /// with 6-connected adjacency (the paper's other grid-based reference,
    /// e.g. Uber H3-style cells).
    ///
    /// `nx` columns × `ny` rows of cells; odd rows are offset by half a
    /// cell. Cell membership for [`Self::locate`] is nearest-centre, which
    /// is exactly the hexagonal Voronoi of the centre lattice.
    ///
    /// # Panics
    /// Panics if `nx` or `ny` is zero or `nx * ny` exceeds `u16::MAX`.
    pub fn generate_hex(bounds: Rect, nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "need at least one cell per axis");
        assert!(nx * ny <= u16::MAX as usize, "too many cells");
        let cell_w = bounds.width() / nx as f64;
        let cell_h = bounds.height() / ny as f64;
        let idx = |x: usize, y: usize| (y * nx + x) as u16;
        let area = bounds.area() / (nx * ny) as f64;
        let regions = (0..ny)
            .flat_map(|y| (0..nx).map(move |x| (x, y)))
            .map(|(x, y)| {
                let offset = if y % 2 == 1 { 0.5 } else { 0.0 };
                let centroid = Point::new(
                    bounds.min.x + ((x as f64 + 0.5 + offset) * cell_w).min(bounds.width()),
                    bounds.min.y + (y as f64 + 0.5) * cell_h,
                );
                // 6-connectivity: E/W plus the two nearer cells in each of
                // the rows above and below (which two depends on row parity).
                let mut neighbors = Vec::with_capacity(6);
                if x > 0 {
                    neighbors.push(RegionId(idx(x - 1, y)));
                }
                if x + 1 < nx {
                    neighbors.push(RegionId(idx(x + 1, y)));
                }
                let diag: [isize; 2] = if y % 2 == 1 { [0, 1] } else { [-1, 0] };
                for dy in [-1isize, 1] {
                    let yy = y as isize + dy;
                    if yy < 0 || yy >= ny as isize {
                        continue;
                    }
                    for &dx in &diag {
                        let xx = x as isize + dx;
                        if xx < 0 || xx >= nx as isize {
                            continue;
                        }
                        neighbors.push(RegionId(idx(xx as usize, yy as usize)));
                    }
                }
                neighbors.sort();
                neighbors.dedup();
                Region {
                    id: RegionId(idx(x, y)),
                    centroid,
                    area_km2: area,
                    neighbors,
                }
            })
            .collect();
        UrbanPartition { bounds, regions }
    }

    /// The city bounding box.
    #[inline]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Number of regions.
    #[inline]
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the partition is empty (never true for generated partitions).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The region with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// All regions in id order.
    #[inline]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The region containing point `p` (nearest Voronoi seed).
    pub fn locate(&self, p: Point) -> RegionId {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, r) in self.regions.iter().enumerate() {
            let d = r.centroid.distance_sq(p);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        RegionId(best as u16)
    }

    /// Whether regions `a` and `b` share a boundary.
    pub fn are_adjacent(&self, a: RegionId, b: RegionId) -> bool {
        self.region(a).neighbors.binary_search(&b).is_ok()
    }

    /// Centroid-to-centroid Euclidean distance between two regions, km.
    #[inline]
    pub fn centroid_distance(&self, a: RegionId, b: RegionId) -> f64 {
        self.region(a).centroid.distance(self.region(b).centroid)
    }

    /// Whether the region adjacency graph is connected (BFS from region 0).
    pub fn is_connected(&self) -> bool {
        if self.regions.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.regions.len()];
        let mut queue = std::collections::VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(i) = queue.pop_front() {
            for &n in &self.regions[i].neighbors {
                if !seen[n.index()] {
                    seen[n.index()] = true;
                    count += 1;
                    queue.push_back(n.index());
                }
            }
        }
        count == self.regions.len()
    }
}

fn nearest_seed(seeds: &[Point], p: Point) -> u16 {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (i, s) in seeds.iter().enumerate() {
        let d = s.distance_sq(p);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> UrbanPartition {
        UrbanPartition::generate(Rect::with_size(50.0, 25.0), 60, 7)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.regions().iter().zip(b.regions()) {
            assert_eq!(ra.centroid, rb.centroid);
            assert_eq!(ra.neighbors, rb.neighbors);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = UrbanPartition::generate(Rect::with_size(50.0, 25.0), 60, 1);
        let b = UrbanPartition::generate(Rect::with_size(50.0, 25.0), 60, 2);
        let same = a
            .regions()
            .iter()
            .zip(b.regions())
            .all(|(x, y)| x.centroid == y.centroid);
        assert!(!same);
    }

    #[test]
    fn region_count_matches_request() {
        assert_eq!(small().len(), 60);
        assert_eq!(
            UrbanPartition::generate(Rect::with_size(60.0, 30.0), 491, 3).len(),
            491
        );
    }

    #[test]
    fn adjacency_is_symmetric_and_irreflexive() {
        let p = small();
        for r in p.regions() {
            for &n in &r.neighbors {
                assert_ne!(n, r.id, "region adjacent to itself");
                assert!(
                    p.region(n).neighbors.contains(&r.id),
                    "asymmetric adjacency {} -> {}",
                    r.id,
                    n
                );
            }
        }
    }

    #[test]
    fn neighbors_are_sorted() {
        let p = small();
        for r in p.regions() {
            let mut sorted = r.neighbors.clone();
            sorted.sort();
            assert_eq!(sorted, r.neighbors);
        }
    }

    #[test]
    fn partition_graph_is_connected() {
        assert!(small().is_connected());
        assert!(UrbanPartition::generate(Rect::with_size(60.0, 30.0), 491, 11).is_connected());
    }

    #[test]
    fn every_region_has_a_neighbor() {
        // A Voronoi region in a partition of >1 regions always borders another.
        let p = small();
        for r in p.regions() {
            assert!(!r.neighbors.is_empty(), "{} has no neighbors", r.id);
        }
    }

    #[test]
    fn locate_returns_owning_region() {
        let p = small();
        for r in p.regions() {
            assert_eq!(p.locate(r.centroid), r.id);
        }
    }

    #[test]
    fn areas_sum_to_city_area() {
        let p = small();
        let total: f64 = p.regions().iter().map(|r| r.area_km2).sum();
        assert!((total - p.bounds().area()).abs() < 1e-6);
    }

    #[test]
    fn are_adjacent_agrees_with_lists() {
        let p = small();
        let r0 = &p.regions()[0];
        let n = r0.neighbors[0];
        assert!(p.are_adjacent(r0.id, n));
        // Find some region not adjacent to r0.
        let far = p
            .regions()
            .iter()
            .find(|r| r.id != r0.id && !r0.neighbors.contains(&r.id))
            .expect("60-region partition has non-neighbors");
        assert!(!p.are_adjacent(r0.id, far.id));
    }

    #[test]
    fn centroid_distance_is_symmetric() {
        let p = small();
        let a = RegionId(0);
        let b = RegionId(5);
        assert!((p.centroid_distance(a, b) - p.centroid_distance(b, a)).abs() < 1e-12);
        assert_eq!(p.centroid_distance(a, a), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn zero_regions_rejected() {
        let _ = UrbanPartition::generate(Rect::with_size(10.0, 10.0), 0, 1);
    }

    #[test]
    fn grid_partition_has_regular_structure() {
        let g = UrbanPartition::generate_grid(Rect::with_size(40.0, 20.0), 8, 4);
        assert_eq!(g.len(), 32);
        assert!(g.is_connected());
        // Interior cells have 4 neighbours, corners 2.
        assert_eq!(g.region(RegionId(0)).neighbors.len(), 2);
        let interior = g.region(RegionId(9)); // (1,1)
        assert_eq!(interior.neighbors.len(), 4);
        // Uniform areas summing to the city area.
        let total: f64 = g.regions().iter().map(|r| r.area_km2).sum();
        assert!((total - 800.0).abs() < 1e-9);
        assert!((g.region(RegionId(5)).area_km2 - 25.0).abs() < 1e-9);
    }

    #[test]
    fn grid_adjacency_is_symmetric() {
        let g = UrbanPartition::generate_grid(Rect::with_size(10.0, 10.0), 5, 5);
        for r in g.regions() {
            for &n in &r.neighbors {
                assert!(g.region(n).neighbors.contains(&r.id));
            }
        }
    }

    #[test]
    fn grid_locate_finds_owning_cell() {
        let g = UrbanPartition::generate_grid(Rect::with_size(10.0, 10.0), 2, 2);
        assert_eq!(g.locate(Point::new(2.0, 2.0)), RegionId(0));
        assert_eq!(g.locate(Point::new(8.0, 2.0)), RegionId(1));
        assert_eq!(g.locate(Point::new(2.0, 8.0)), RegionId(2));
        assert_eq!(g.locate(Point::new(8.0, 8.0)), RegionId(3));
    }

    #[test]
    fn hex_partition_is_six_connected_in_the_interior() {
        let h = UrbanPartition::generate_hex(Rect::with_size(40.0, 20.0), 8, 6);
        assert_eq!(h.len(), 48);
        assert!(h.is_connected());
        // An interior cell has 6 neighbours.
        let interior = h.region(RegionId((2 * 8 + 3) as u16));
        assert_eq!(interior.neighbors.len(), 6, "{:?}", interior.neighbors);
    }

    #[test]
    fn hex_adjacency_is_symmetric_and_irreflexive() {
        let h = UrbanPartition::generate_hex(Rect::with_size(30.0, 15.0), 6, 5);
        for r in h.regions() {
            for &n in &r.neighbors {
                assert_ne!(n, r.id);
                assert!(h.region(n).neighbors.contains(&r.id), "{} -> {}", r.id, n);
            }
        }
    }

    #[test]
    fn hex_odd_rows_are_offset() {
        let h = UrbanPartition::generate_hex(Rect::with_size(10.0, 10.0), 2, 2);
        let row0 = h.region(RegionId(0)).centroid.x;
        let row1 = h.region(RegionId(2)).centroid.x;
        assert!(row1 > row0, "odd row not offset: {row0} vs {row1}");
    }

    #[test]
    fn region_sizes_are_heterogeneous() {
        // The centre-bias should produce meaningfully unequal region areas,
        // like real census partitions.
        let p = small();
        let areas: Vec<f64> = p.regions().iter().map(|r| r.area_km2).collect();
        let max = areas.iter().cloned().fold(f64::MIN, f64::max);
        let min = areas.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 2.0 * min.max(1e-9), "areas suspiciously uniform");
    }
}
