//! Strongly-typed identifiers for city entities.
//!
//! Regions and charging stations are both "locations" in the FairMove MDP
//! (the paper's location index `l ∈ R ∪ C`), but confusing one for the other
//! is a real bug class, so each gets its own newtype. Both are small integers
//! so they double as dense array indices.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an urban-partition region (the paper's `r ∈ R`).
///
/// Region ids are dense: a city with `n` regions uses ids `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u16);

/// Identifier of a charging station (the paper's `c ∈ C`).
///
/// Station ids are dense: a city with `m` stations uses ids `0..m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StationId(pub u16);

impl RegionId {
    /// The id as a dense array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl StationId {
    /// The id as a dense array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Display for StationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// A location in the MDP state: either a region or a charging station.
///
/// This is the paper's location index `l ∈ R ∪ C` (Section III-C, the
/// local-view state `s_lo = [t, l]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Location {
    /// The taxi is cruising/serving inside a region.
    Region(RegionId),
    /// The taxi is queued or charging at a station.
    Station(StationId),
}

impl Location {
    /// Dense index into the combined location space `R ∪ C`.
    ///
    /// Regions occupy `0..n_regions`, stations occupy
    /// `n_regions..n_regions + n_stations`.
    #[inline]
    pub fn dense_index(self, n_regions: usize) -> usize {
        match self {
            Location::Region(r) => r.index(),
            Location::Station(s) => n_regions + s.index(),
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Region(r) => write!(f, "{r}"),
            Location::Station(s) => write!(f, "{s}"),
        }
    }
}

impl From<RegionId> for Location {
    fn from(r: RegionId) -> Self {
        Location::Region(r)
    }
}

impl From<StationId> for Location {
    fn from(s: StationId) -> Self {
        Location::Station(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_id_round_trips_as_index() {
        let r = RegionId(42);
        assert_eq!(r.index(), 42);
        assert_eq!(r.to_string(), "R42");
    }

    #[test]
    fn station_id_round_trips_as_index() {
        let s = StationId(7);
        assert_eq!(s.index(), 7);
        assert_eq!(s.to_string(), "S7");
    }

    #[test]
    fn dense_index_separates_regions_and_stations() {
        let n_regions = 100;
        assert_eq!(Location::Region(RegionId(3)).dense_index(n_regions), 3);
        assert_eq!(Location::Station(StationId(3)).dense_index(n_regions), 103);
    }

    #[test]
    fn dense_indices_are_unique_across_space() {
        let n_regions = 10;
        let n_stations = 5;
        let mut seen = std::collections::HashSet::new();
        for r in 0..n_regions {
            assert!(seen.insert(Location::Region(RegionId(r as u16)).dense_index(n_regions)));
        }
        for s in 0..n_stations {
            assert!(seen.insert(Location::Station(StationId(s as u16)).dense_index(n_regions)));
        }
        assert_eq!(seen.len(), n_regions + n_stations);
    }

    #[test]
    fn location_from_ids() {
        assert_eq!(Location::from(RegionId(1)), Location::Region(RegionId(1)));
        assert_eq!(
            Location::from(StationId(2)),
            Location::Station(StationId(2))
        );
    }

    #[test]
    fn location_display() {
        assert_eq!(Location::Region(RegionId(5)).to_string(), "R5");
        assert_eq!(Location::Station(StationId(9)).to_string(), "S9");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(RegionId(1) < RegionId(2));
        assert!(StationId(0) < StationId(10));
    }
}
