//! Charging-station substrate.
//!
//! Shenzhen deployed 123 e-taxi-only charging stations with >5,000 fast
//! charging points (Section II-A/IV-A of the paper). Charger counts per
//! station are heavily skewed in real deployments (a few mega-stations, many
//! small ones), which matters for the paper's congestion findings (Fig. 4,
//! Fig. 12): herding into small stations is what produces SD2's negative
//! PRIT. We reproduce that skew with a geometric-ish distribution.

use crate::geometry::Point;
use crate::ids::{RegionId, StationId};
use crate::partition::UrbanPartition;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A fast-charging station.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChargingStation {
    /// Dense station id.
    pub id: StationId,
    /// Location in city coordinates.
    pub position: Point,
    /// Region the station sits in.
    pub region: RegionId,
    /// Number of fast charging points (simultaneous charging slots).
    pub charging_points: u32,
}

/// Places `n_stations` stations in distinct regions of `partition`.
///
/// Station positions are jittered off the host region's centroid; charging
/// point counts follow a skewed distribution normalized so that the fleet-to-
/// charger ratio roughly matches Shenzhen's (20,130 taxis : ~5,000 points ≈ 4:1,
/// controlled by `total_points`).
///
/// # Panics
/// Panics if `n_stations` is zero or exceeds the number of regions.
pub fn place_stations(
    partition: &UrbanPartition,
    n_stations: usize,
    total_points: u32,
    seed: u64,
) -> Vec<ChargingStation> {
    assert!(n_stations > 0, "need at least one station");
    assert!(
        n_stations <= partition.len(),
        "more stations ({n_stations}) than regions ({})",
        partition.len()
    );
    assert!(
        total_points as usize >= n_stations,
        "need at least one charging point per station"
    );
    // Salted so station placement doesn't correlate with partition generation.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5741_5449_4f4e);

    // Choose distinct host regions.
    let mut region_ids: Vec<usize> = (0..partition.len()).collect();
    region_ids.shuffle(&mut rng);
    region_ids.truncate(n_stations);

    // Skewed raw sizes: x ~ exp(1) + floor, producing a few large stations.
    let raw: Vec<f64> = (0..n_stations)
        .map(|_| {
            let u: f64 = rng.gen_range(1e-6..1.0f64);
            0.3 - u.ln() // exponential with a floor
        })
        .collect();
    let raw_sum: f64 = raw.iter().sum();

    let mut stations: Vec<ChargingStation> = region_ids
        .iter()
        .zip(&raw)
        .enumerate()
        .map(|(i, (&region_idx, &w))| {
            let region = &partition.regions()[region_idx];
            let jitter = Point::new(rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5));
            let position = partition.bounds().clamp(Point::new(
                region.centroid.x + jitter.x,
                region.centroid.y + jitter.y,
            ));
            let points = ((w / raw_sum) * f64::from(total_points)).round().max(1.0) as u32;
            ChargingStation {
                id: StationId(i as u16),
                position,
                region: region.id,
                charging_points: points,
            }
        })
        .collect();

    // Rounding can drift the total; nudge the largest station to compensate
    // so configured capacity is exact.
    let current: u32 = stations.iter().map(|s| s.charging_points).sum();
    if current != total_points {
        let largest = stations
            .iter_mut()
            .max_by_key(|s| s.charging_points)
            .expect("n_stations > 0");
        let adjusted =
            i64::from(largest.charging_points) + i64::from(total_points) - i64::from(current);
        largest.charging_points = adjusted.max(1) as u32;
    }

    stations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;

    fn setup() -> (UrbanPartition, Vec<ChargingStation>) {
        let p = UrbanPartition::generate(Rect::with_size(50.0, 25.0), 80, 3);
        let s = place_stations(&p, 20, 400, 9);
        (p, s)
    }

    #[test]
    fn placement_is_deterministic() {
        let (p, a) = setup();
        let b = place_stations(&p, 20, 400, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.position, y.position);
            assert_eq!(x.charging_points, y.charging_points);
        }
    }

    #[test]
    fn station_count_and_ids_are_dense() {
        let (_, s) = setup();
        assert_eq!(s.len(), 20);
        for (i, st) in s.iter().enumerate() {
            assert_eq!(st.id, StationId(i as u16));
        }
    }

    #[test]
    fn total_charging_points_match_config() {
        let (_, s) = setup();
        let total: u32 = s.iter().map(|st| st.charging_points).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn every_station_has_at_least_one_point() {
        let (_, s) = setup();
        assert!(s.iter().all(|st| st.charging_points >= 1));
    }

    #[test]
    fn stations_occupy_distinct_regions() {
        let (_, s) = setup();
        let mut regions: Vec<_> = s.iter().map(|st| st.region).collect();
        regions.sort();
        regions.dedup();
        assert_eq!(regions.len(), s.len());
    }

    #[test]
    fn station_positions_are_in_bounds() {
        let (p, s) = setup();
        for st in &s {
            assert!(p.bounds().contains(st.position));
        }
    }

    #[test]
    fn charger_counts_are_skewed() {
        let p = UrbanPartition::generate(Rect::with_size(60.0, 30.0), 200, 5);
        let s = place_stations(&p, 123, 5000, 5);
        let max = s.iter().map(|st| st.charging_points).max().unwrap();
        let min = s.iter().map(|st| st.charging_points).min().unwrap();
        assert!(
            max >= 3 * min.max(1),
            "expected skewed sizes, got {min}..{max}"
        );
    }

    #[test]
    #[should_panic(expected = "more stations")]
    fn too_many_stations_rejected() {
        let p = UrbanPartition::generate(Rect::with_size(10.0, 10.0), 5, 1);
        let _ = place_stations(&p, 6, 100, 1);
    }

    #[test]
    fn shenzhen_scale_placement_works() {
        let p = UrbanPartition::generate(Rect::with_size(60.0, 30.0), 491, 42);
        let s = place_stations(&p, 123, 5000, 42);
        assert_eq!(s.len(), 123);
        let total: u32 = s.iter().map(|st| st.charging_points).sum();
        assert_eq!(total, 5000);
    }
}
