//! Nearest-charging-station index.
//!
//! The paper prunes each taxi's charging actions to its **five nearest
//! charging stations** (Section III-C, Action space): "we consider the
//! nearest five charging stations for each e-taxi to reduce the action
//! space". Since charging decisions are made at region granularity, we
//! precompute, for every region, the `k` nearest stations by driving distance
//! from the region centroid.

use crate::ids::{RegionId, StationId};
use crate::partition::UrbanPartition;
use crate::station::ChargingStation;
use crate::travel::TravelModel;
use serde::{Deserialize, Serialize};

/// Per-region list of the `k` nearest charging stations, nearest first.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NearestStations {
    k: usize,
    /// `per_region[r]` = station ids sorted by driving distance ascending.
    per_region: Vec<Vec<StationId>>,
    /// `distance_km[r]` = driving distances matching `per_region[r]`.
    distance_km: Vec<Vec<f64>>,
}

impl NearestStations {
    /// Builds the index for all regions of `partition` over `stations`.
    ///
    /// `k` is clamped to the number of stations.
    pub fn build(
        partition: &UrbanPartition,
        stations: &[ChargingStation],
        travel: &TravelModel,
        k: usize,
    ) -> Self {
        let k = k.min(stations.len());
        let mut per_region = Vec::with_capacity(partition.len());
        let mut distance_km = Vec::with_capacity(partition.len());
        for region in partition.regions() {
            let mut dists: Vec<(f64, StationId)> = stations
                .iter()
                .map(|s| (travel.driving_distance(region.centroid, s.position), s.id))
                .collect();
            dists.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            dists.truncate(k);
            per_region.push(dists.iter().map(|&(_, id)| id).collect());
            distance_km.push(dists.iter().map(|&(d, _)| d).collect());
        }
        NearestStations {
            k,
            per_region,
            distance_km,
        }
    }

    /// Number of stations stored per region.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The `k` nearest stations to `region`, nearest first.
    #[inline]
    pub fn nearest(&self, region: RegionId) -> &[StationId] {
        &self.per_region[region.index()]
    }

    /// Driving distances (km) matching [`Self::nearest`].
    #[inline]
    pub fn distances(&self, region: RegionId) -> &[f64] {
        &self.distance_km[region.index()]
    }

    /// The single nearest station to `region`.
    #[inline]
    pub fn nearest_one(&self, region: RegionId) -> StationId {
        self.per_region[region.index()][0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;
    use crate::station::place_stations;

    fn setup(k: usize) -> (UrbanPartition, Vec<ChargingStation>, NearestStations) {
        let p = UrbanPartition::generate(Rect::with_size(50.0, 25.0), 60, 3);
        let s = place_stations(&p, 15, 300, 5);
        let idx = NearestStations::build(&p, &s, &TravelModel::default(), k);
        (p, s, idx)
    }

    #[test]
    fn stores_k_per_region() {
        let (p, _, idx) = setup(5);
        assert_eq!(idx.k(), 5);
        for r in p.regions() {
            assert_eq!(idx.nearest(r.id).len(), 5);
            assert_eq!(idx.distances(r.id).len(), 5);
        }
    }

    #[test]
    fn k_clamped_to_station_count() {
        let (_, s, idx) = setup(50);
        assert_eq!(idx.k(), s.len());
    }

    #[test]
    fn distances_are_sorted_ascending() {
        let (p, _, idx) = setup(5);
        for r in p.regions() {
            let d = idx.distances(r.id);
            assert!(d.windows(2).all(|w| w[0] <= w[1]), "unsorted at {}", r.id);
        }
    }

    #[test]
    fn nearest_is_truly_nearest() {
        let (p, s, idx) = setup(5);
        let travel = TravelModel::default();
        for r in p.regions() {
            let best = idx.nearest_one(r.id);
            let best_d = travel.driving_distance(r.centroid, s[best.index()].position);
            for st in &s {
                let d = travel.driving_distance(r.centroid, st.position);
                assert!(
                    best_d <= d + 1e-9,
                    "{}: {} at {best_d} beaten by {} at {d}",
                    r.id,
                    best,
                    st.id
                );
            }
        }
    }

    #[test]
    fn nearest_lists_have_unique_stations() {
        let (p, _, idx) = setup(5);
        for r in p.regions() {
            let mut ids: Vec<_> = idx.nearest(r.id).to_vec();
            ids.sort();
            ids.dedup();
            assert_eq!(ids.len(), idx.k());
        }
    }
}
