//! Shortest paths over the region adjacency graph.
//!
//! The displacement action space is "move to an *adjacent* region", so a
//! taxi repositioning across the city chains several decisions. Planning
//! policies (and the oracle baseline) need to know, from any region, which
//! adjacent region lies on the shortest path toward a target — this module
//! precomputes that with Dijkstra over centroid distances.

use crate::ids::RegionId;
use crate::partition::UrbanPartition;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// All-pairs shortest-path structure over the region graph.
///
/// ```
/// use fairmove_city::{Rect, RegionRouter, UrbanPartition};
/// let partition = UrbanPartition::generate(Rect::with_size(20.0, 10.0), 12, 1);
/// let router = RegionRouter::build(&partition);
/// let a = partition.regions()[0].id;
/// let b = partition.regions()[11].id;
/// let path = router.path(a, b).unwrap();
/// assert_eq!(path[0], a);
/// assert_eq!(*path.last().unwrap(), b);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionRouter {
    n: usize,
    /// `dist[s * n + t]` = shortest on-graph distance s → t, km.
    dist: Vec<f64>,
    /// `next[s * n + t]` = first hop on the shortest path s → t
    /// (`s` itself when `s == t`).
    next: Vec<u16>,
}

#[derive(PartialEq)]
struct QueueEntry(f64, usize);

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance.
        other.0.total_cmp(&self.0)
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl RegionRouter {
    /// Builds the router with one Dijkstra per source region
    /// (`O(R·(E log R))`; ~10 ms for the 491-region city).
    pub fn build(partition: &UrbanPartition) -> Self {
        let n = partition.len();
        let mut dist = vec![f64::INFINITY; n * n];
        let mut next = vec![0u16; n * n];

        for source in 0..n {
            let row = &mut dist[source * n..(source + 1) * n];
            let next_row = &mut next[source * n..(source + 1) * n];
            let mut first_hop: Vec<u16> = vec![u16::MAX; n];
            let mut heap = BinaryHeap::new();
            row[source] = 0.0;
            first_hop[source] = source as u16;
            heap.push(QueueEntry(0.0, source));

            while let Some(QueueEntry(d, u)) = heap.pop() {
                if d > row[u] {
                    continue;
                }
                for &v in &partition.regions()[u].neighbors {
                    let vi = v.index();
                    let w = partition.centroid_distance(RegionId(u as u16), v);
                    // The heap's `total_cmp` ordering tolerates NaN, but a
                    // NaN weight would silently poison every distance it
                    // touches (NaN fails the `nd < row[vi]` relaxation, so
                    // whole rows stay infinite). Catch it at the source.
                    debug_assert!(w.is_finite(), "non-finite edge weight {w} on {u} -> {v}",);
                    let nd = d + w;
                    if nd < row[vi] {
                        row[vi] = nd;
                        first_hop[vi] = if u == source { v.0 } else { first_hop[u] };
                        heap.push(QueueEntry(nd, vi));
                    }
                }
            }
            next_row.copy_from_slice(&first_hop);
        }

        RegionRouter { n, dist, next }
    }

    /// Shortest on-graph distance from `s` to `t`, km. Infinite if
    /// unreachable (never happens for generated partitions, which are
    /// connected).
    #[inline]
    pub fn distance(&self, s: RegionId, t: RegionId) -> f64 {
        self.dist[s.index() * self.n + t.index()]
    }

    /// The adjacent region to move to from `s` on the shortest path to `t`.
    /// Returns `s` when already there; `None` if unreachable.
    pub fn next_hop(&self, s: RegionId, t: RegionId) -> Option<RegionId> {
        let hop = self.next[s.index() * self.n + t.index()];
        if hop == u16::MAX {
            None
        } else {
            Some(RegionId(hop))
        }
    }

    /// The full hop sequence from `s` to `t`, inclusive of both endpoints.
    pub fn path(&self, s: RegionId, t: RegionId) -> Option<Vec<RegionId>> {
        if self.distance(s, t).is_infinite() {
            return None;
        }
        let mut path = vec![s];
        let mut cur = s;
        // Bounded by n hops; a longer walk means a routing-table bug.
        for _ in 0..self.n {
            if cur == t {
                return Some(path);
            }
            cur = self.next_hop(cur, t)?;
            path.push(cur);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;

    fn setup() -> (UrbanPartition, RegionRouter) {
        let p = UrbanPartition::generate(Rect::with_size(50.0, 25.0), 60, 7);
        let r = RegionRouter::build(&p);
        (p, r)
    }

    #[test]
    fn self_distance_is_zero() {
        let (p, r) = setup();
        for region in p.regions() {
            assert_eq!(r.distance(region.id, region.id), 0.0);
            assert_eq!(r.next_hop(region.id, region.id), Some(region.id));
        }
    }

    #[test]
    fn all_pairs_reachable_in_connected_partition() {
        let (p, r) = setup();
        for a in p.regions() {
            for b in p.regions() {
                assert!(
                    r.distance(a.id, b.id).is_finite(),
                    "{} -> {} unreachable",
                    a.id,
                    b.id
                );
            }
        }
    }

    #[test]
    fn distances_are_symmetric() {
        // Undirected graph with symmetric weights.
        let (p, r) = setup();
        for a in p.regions().iter().take(10) {
            for b in p.regions().iter().take(10) {
                assert!(
                    (r.distance(a.id, b.id) - r.distance(b.id, a.id)).abs() < 1e-9,
                    "{} vs {}",
                    a.id,
                    b.id
                );
            }
        }
    }

    #[test]
    fn graph_distance_at_least_euclidean() {
        let (p, r) = setup();
        for a in p.regions().iter().take(15) {
            for b in p.regions().iter().take(15) {
                let euclid = p.centroid_distance(a.id, b.id);
                assert!(
                    r.distance(a.id, b.id) >= euclid - 1e-9,
                    "{} -> {}: graph {} < euclid {}",
                    a.id,
                    b.id,
                    r.distance(a.id, b.id),
                    euclid
                );
            }
        }
    }

    #[test]
    fn next_hop_is_adjacent_and_decreases_distance() {
        let (p, r) = setup();
        for a in p.regions().iter().take(20) {
            for b in p.regions().iter().take(20) {
                if a.id == b.id {
                    continue;
                }
                let hop = r.next_hop(a.id, b.id).expect("reachable");
                assert!(
                    p.are_adjacent(a.id, hop),
                    "{} hop {} not adjacent",
                    a.id,
                    hop
                );
                assert!(
                    r.distance(hop, b.id) < r.distance(a.id, b.id),
                    "no progress {} -> {} via {}",
                    a.id,
                    b.id,
                    hop
                );
            }
        }
    }

    #[test]
    fn path_connects_endpoints_via_edges() {
        let (p, r) = setup();
        let a = p.regions()[0].id;
        let b = p.regions()[40].id;
        let path = r.path(a, b).expect("reachable");
        assert_eq!(*path.first().unwrap(), a);
        assert_eq!(*path.last().unwrap(), b);
        for w in path.windows(2) {
            assert!(p.are_adjacent(w[0], w[1]));
        }
        // Path length telescopes to the routed distance.
        let total: f64 = path
            .windows(2)
            .map(|w| p.centroid_distance(w[0], w[1]))
            .sum();
        assert!((total - r.distance(a, b)).abs() < 1e-9);
    }

    #[test]
    fn queue_entry_orders_nan_without_panicking() {
        // Regression: the heap once compared distances with
        // `partial_cmp().unwrap()`, which panics on NaN mid-Dijkstra. The
        // `total_cmp` ordering must instead sort NaN after every finite
        // distance and +inf, so a poisoned entry pops last and deterministic
        // runs stay deterministic.
        let mut heap = BinaryHeap::new();
        for (d, i) in [(f64::NAN, 0), (2.0, 1), (f64::INFINITY, 2), (1.0, 3)] {
            heap.push(QueueEntry(d, i));
        }
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop()).map(|e| e.1).collect();
        assert_eq!(order, vec![3, 1, 2, 0]);
    }

    #[test]
    fn triangle_inequality_holds() {
        let (p, r) = setup();
        let ids: Vec<RegionId> = p.regions().iter().map(|x| x.id).take(12).collect();
        for &a in &ids {
            for &b in &ids {
                for &c in &ids {
                    assert!(r.distance(a, c) <= r.distance(a, b) + r.distance(b, c) + 1e-9);
                }
            }
        }
    }
}
