//! Planar geometry primitives.
//!
//! The real system works in WGS-84 longitude/latitude; at city scale the
//! metric is effectively a plane, so we model the city as a rectangle in
//! kilometre coordinates. All the FairMove algorithms consume only distances
//! and region memberships, which this preserves exactly.

use serde::{Deserialize, Serialize};

/// A point in city coordinates, in kilometres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// East-west coordinate, km.
    pub x: f64,
    /// North-south coordinate, km.
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)` km.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, km.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance, for nearest-neighbour comparisons that
    /// don't need the square root.
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Manhattan (L1) distance, km. Street networks make realized driving
    /// distance closer to L1 than L2; the travel model uses this.
    #[inline]
    pub fn manhattan_distance(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
}

/// An axis-aligned rectangle: the city's bounding box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Minimum corner (south-west).
    pub min: Point,
    /// Maximum corner (north-east).
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from its corners.
    ///
    /// # Panics
    /// Panics if `min` is not component-wise ≤ `max`.
    pub fn new(min: Point, max: Point) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y,
            "Rect min must be <= max: {min:?} vs {max:?}"
        );
        Rect { min, max }
    }

    /// A rectangle anchored at the origin with the given extent in km.
    pub fn with_size(width: f64, height: f64) -> Self {
        Rect::new(Point::new(0.0, 0.0), Point::new(width, height))
    }

    /// Width in km.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height in km.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in km².
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Whether `p` lies inside (inclusive of the boundary).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps `p` into the rectangle.
    #[inline]
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Centre point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_distance_sums_axes() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, -2.0);
        assert!((a.manhattan_distance(b) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert!((mid.x - 5.0).abs() < 1e-12 && (mid.y - 10.0).abs() < 1e-12);
    }

    #[test]
    fn rect_dimensions() {
        let r = Rect::with_size(50.0, 25.0);
        assert_eq!(r.width(), 50.0);
        assert_eq!(r.height(), 25.0);
        assert_eq!(r.area(), 1250.0);
        assert_eq!(r.center(), Point::new(25.0, 12.5));
    }

    #[test]
    fn rect_contains_boundary() {
        let r = Rect::with_size(10.0, 10.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(10.0, 10.0)));
        assert!(r.contains(Point::new(5.0, 5.0)));
        assert!(!r.contains(Point::new(-0.1, 5.0)));
        assert!(!r.contains(Point::new(5.0, 10.1)));
    }

    #[test]
    fn rect_clamp_pulls_outside_points_to_boundary() {
        let r = Rect::with_size(10.0, 10.0);
        assert_eq!(r.clamp(Point::new(-5.0, 5.0)), Point::new(0.0, 5.0));
        assert_eq!(r.clamp(Point::new(20.0, 30.0)), Point::new(10.0, 10.0));
        assert_eq!(r.clamp(Point::new(3.0, 4.0)), Point::new(3.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "Rect min must be <= max")]
    fn rect_rejects_inverted_corners() {
        let _ = Rect::new(Point::new(1.0, 0.0), Point::new(0.0, 1.0));
    }

    proptest! {
        #[test]
        fn distance_is_symmetric(ax in -100.0..100.0f64, ay in -100.0..100.0f64,
                                 bx in -100.0..100.0f64, by in -100.0..100.0f64) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
        }

        #[test]
        fn triangle_inequality(ax in -100.0..100.0f64, ay in -100.0..100.0f64,
                               bx in -100.0..100.0f64, by in -100.0..100.0f64,
                               cx in -100.0..100.0f64, cy in -100.0..100.0f64) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
        }

        #[test]
        fn euclidean_bounded_by_manhattan(ax in -100.0..100.0f64, ay in -100.0..100.0f64,
                                          bx in -100.0..100.0f64, by in -100.0..100.0f64) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            prop_assert!(a.distance(b) <= a.manhattan_distance(b) + 1e-9);
        }

        #[test]
        fn clamped_point_is_contained(px in -500.0..500.0f64, py in -500.0..500.0f64) {
            let r = Rect::with_size(50.0, 25.0);
            prop_assert!(r.contains(r.clamp(Point::new(px, py))));
        }
    }
}
