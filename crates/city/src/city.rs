//! The assembled city: partition + stations + travel model + indices.

use crate::geometry::Rect;
use crate::ids::{RegionId, StationId};
use crate::index::NearestStations;
use crate::partition::{Region, UrbanPartition};
use crate::station::{place_stations, ChargingStation};
use crate::travel::TravelModel;
use serde::{Deserialize, Serialize};

/// Configuration for synthesizing a city.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CityConfig {
    /// City extent in km (Shenzhen is roughly 50 × 25 km).
    pub width_km: f64,
    /// City extent in km.
    pub height_km: f64,
    /// Number of partition regions (paper: 491).
    pub n_regions: usize,
    /// Number of charging stations (paper: 123).
    pub n_stations: usize,
    /// Total fast charging points across all stations (paper: >5,000).
    pub total_charging_points: u32,
    /// How many nearest stations each region's charge action may target
    /// (paper: 5).
    pub nearest_stations_k: usize,
    /// RNG seed for partition + station placement.
    pub seed: u64,
}

impl Default for CityConfig {
    /// CI-friendly scaled-down default (see DESIGN.md "Simulation scale").
    fn default() -> Self {
        CityConfig {
            width_km: 50.0,
            height_km: 25.0,
            n_regions: 120,
            n_stations: 30,
            total_charging_points: 150,
            nearest_stations_k: 5,
            seed: 20130,
        }
    }
}

impl CityConfig {
    /// Full Shenzhen-scale parameters from the paper.
    pub fn shenzhen_scale() -> Self {
        CityConfig {
            width_km: 50.0,
            height_km: 25.0,
            n_regions: 491,
            n_stations: 123,
            total_charging_points: 5000,
            nearest_stations_k: 5,
            seed: 20130,
        }
    }
}

/// The full synthetic city substrate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct City {
    config: CityConfig,
    partition: UrbanPartition,
    stations: Vec<ChargingStation>,
    travel: TravelModel,
    nearest: NearestStations,
}

impl City {
    /// Builds a city from `config`. Deterministic in `config.seed`.
    pub fn generate(config: CityConfig) -> Self {
        let bounds = Rect::with_size(config.width_km, config.height_km);
        let partition = UrbanPartition::generate(bounds, config.n_regions, config.seed);
        let stations = place_stations(
            &partition,
            config.n_stations,
            config.total_charging_points,
            config.seed,
        );
        let travel = TravelModel::default();
        let nearest =
            NearestStations::build(&partition, &stations, &travel, config.nearest_stations_k);
        City {
            config,
            partition,
            stations,
            travel,
            nearest,
        }
    }

    /// The configuration this city was generated from.
    #[inline]
    pub fn config(&self) -> &CityConfig {
        &self.config
    }

    /// The urban partition.
    #[inline]
    pub fn partition(&self) -> &UrbanPartition {
        &self.partition
    }

    /// All charging stations in id order.
    #[inline]
    pub fn stations(&self) -> &[ChargingStation] {
        &self.stations
    }

    /// One charging station.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn station(&self, id: StationId) -> &ChargingStation {
        &self.stations[id.index()]
    }

    /// One region.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[inline]
    pub fn region(&self, id: RegionId) -> &Region {
        self.partition.region(id)
    }

    /// Number of regions.
    #[inline]
    pub fn n_regions(&self) -> usize {
        self.partition.len()
    }

    /// Number of stations.
    #[inline]
    pub fn n_stations(&self) -> usize {
        self.stations.len()
    }

    /// The travel-time model.
    #[inline]
    pub fn travel(&self) -> &TravelModel {
        &self.travel
    }

    /// The nearest-stations index.
    #[inline]
    pub fn nearest_stations(&self) -> &NearestStations {
        &self.nearest
    }

    /// Driving distance between two region centroids, km.
    pub fn region_driving_distance(&self, a: RegionId, b: RegionId) -> f64 {
        self.travel
            .driving_distance(self.region(a).centroid, self.region(b).centroid)
    }

    /// Driving distance from a region centroid to a station, km.
    pub fn region_to_station_distance(&self, r: RegionId, s: StationId) -> f64 {
        self.travel
            .driving_distance(self.region(r).centroid, self.station(s).position)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_generates() {
        let city = City::generate(CityConfig::default());
        assert_eq!(city.n_regions(), 120);
        assert_eq!(city.n_stations(), 30);
        assert_eq!(city.nearest_stations().k(), 5);
    }

    #[test]
    fn shenzhen_scale_generates() {
        let city = City::generate(CityConfig::shenzhen_scale());
        assert_eq!(city.n_regions(), 491);
        assert_eq!(city.n_stations(), 123);
        let points: u32 = city.stations().iter().map(|s| s.charging_points).sum();
        assert_eq!(points, 5000);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = City::generate(CityConfig::default());
        let b = City::generate(CityConfig::default());
        for (x, y) in a.stations().iter().zip(b.stations()) {
            assert_eq!(x.position, y.position);
        }
        for (x, y) in a.partition().regions().iter().zip(b.partition().regions()) {
            assert_eq!(x.centroid, y.centroid);
        }
    }

    #[test]
    fn distances_are_consistent_with_travel_model() {
        let city = City::generate(CityConfig::default());
        let r = RegionId(0);
        let s = city.nearest_stations().nearest_one(r);
        let d = city.region_to_station_distance(r, s);
        assert!((d - city.nearest_stations().distances(r)[0]).abs() < 1e-9);
    }

    #[test]
    fn region_distance_zero_to_self() {
        let city = City::generate(CityConfig::default());
        assert_eq!(city.region_driving_distance(RegionId(3), RegionId(3)), 0.0);
    }

    #[test]
    fn partition_is_connected() {
        let city = City::generate(CityConfig::default());
        assert!(city.partition().is_connected());
    }
}
