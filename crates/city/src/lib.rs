//! Synthetic urban substrate for the FairMove reproduction.
//!
//! The FairMove paper (ICDE 2021) operates on the Shenzhen urban partition
//! (491 census regions) plus 123 e-taxi charging stations. That partition and
//! the station metadata are proprietary, so this crate builds the closest
//! synthetic equivalent:
//!
//! * a seeded Voronoi [`partition::UrbanPartition`] of a rectangular city into
//!   irregular, connected regions with an adjacency graph (the paper's
//!   partition is likewise irregular — census blocks, not a square grid);
//! * [`station::ChargingStation`]s placed inside regions with a skewed
//!   distribution of fast-charging point counts;
//! * a [`travel::TravelModel`] that converts plane distance into travel time
//!   with an hour-of-day congestion profile;
//! * a [`index::NearestStations`] index used for the paper's
//!   "five nearest charging stations" action pruning.
//!
//! Everything is deterministic given a seed so experiments are repeatable.

pub mod city;
pub mod geometry;
pub mod ids;
pub mod index;
pub mod partition;
pub mod routing;
pub mod station;
pub mod time;
pub mod travel;

pub use city::{City, CityConfig};
pub use geometry::{Point, Rect};
pub use ids::{RegionId, StationId};
pub use index::NearestStations;
pub use partition::{Region, UrbanPartition};
pub use routing::RegionRouter;
pub use station::ChargingStation;
pub use time::{HourOfDay, SimTime, TimeSlot, MINUTES_PER_DAY, SLOTS_PER_DAY, SLOT_MINUTES};
pub use travel::TravelModel;
