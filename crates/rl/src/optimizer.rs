//! Optimizers: plain SGD and Adam (the paper uses AdamOptimizer, lr 0.001).
//!
//! An optimizer transforms raw gradients into parameter *updates* (already
//! negated and scaled), which [`crate::Mlp::apply_updates`] then adds to the
//! parameters. Keeping the optimizer outside the network lets one network
//! be trained by different optimizers in ablations.

use crate::matrix::Matrix;
use crate::mlp::{Gradients, Mlp};
use serde::{Deserialize, Serialize};

/// Transforms gradients into parameter updates.
pub trait Optimizer {
    /// Converts `grads` (∂L/∂θ) into deltas to *add* to the parameters.
    fn updates(&mut self, grads: &Gradients) -> Gradients;

    /// Convenience: one training step on `net` from `grads`.
    fn step(&mut self, net: &mut Mlp, grads: &Gradients) {
        let u = self.updates(grads);
        net.apply_updates(&u);
    }
}

/// Plain stochastic gradient descent: `Δθ = −lr · g`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
}

impl Sgd {
    /// SGD with learning rate `lr`.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "non-positive learning rate");
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn updates(&mut self, grads: &Gradients) -> Gradients {
        let layers = grads
            .layers
            .iter()
            .map(|(dw, db)| {
                let mut w = dw.clone();
                w.scale_inplace(-self.lr);
                let b = db.iter().map(|g| -self.lr * g).collect();
                (w, b)
            })
            .collect();
        Gradients { layers }
    }
}

/// Adam (Kingma & Ba 2015) with bias correction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate (paper: 0.001).
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    t: u64,
    /// Per-layer (m_w, v_w, m_b, v_b), lazily initialized on first step.
    state: Vec<(Matrix, Matrix, Vec<f64>, Vec<f64>)>,
}

impl Adam {
    /// Adam with the given learning rate and standard betas (0.9 / 0.999).
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "non-positive learning rate");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            state: Vec::new(),
        }
    }

    fn ensure_state(&mut self, grads: &Gradients) {
        if self.state.is_empty() {
            self.state = grads
                .layers
                .iter()
                .map(|(dw, db)| {
                    (
                        Matrix::zeros(dw.rows(), dw.cols()),
                        Matrix::zeros(dw.rows(), dw.cols()),
                        vec![0.0; db.len()],
                        vec![0.0; db.len()],
                    )
                })
                .collect();
        }
        assert_eq!(
            self.state.len(),
            grads.layers.len(),
            "optimizer used across differently-shaped networks"
        );
    }
}

impl Optimizer for Adam {
    fn updates(&mut self, grads: &Gradients) -> Gradients {
        self.ensure_state(grads);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);

        let mut out = Vec::with_capacity(grads.layers.len());
        for ((dw, db), (mw, vw, mb, vb)) in grads.layers.iter().zip(&mut self.state) {
            let mut w_update = Matrix::zeros(dw.rows(), dw.cols());
            for i in 0..dw.data().len() {
                let g = dw.data()[i];
                let m = self.beta1 * mw.data()[i] + (1.0 - self.beta1) * g;
                let v = self.beta2 * vw.data()[i] + (1.0 - self.beta2) * g * g;
                mw.data_mut()[i] = m;
                vw.data_mut()[i] = v;
                let m_hat = m / bc1;
                let v_hat = v / bc2;
                w_update.data_mut()[i] = -self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            let mut b_update = vec![0.0; db.len()];
            for i in 0..db.len() {
                let g = db[i];
                let m = self.beta1 * mb[i] + (1.0 - self.beta1) * g;
                let v = self.beta2 * vb[i] + (1.0 - self.beta2) * g * g;
                mb[i] = m;
                vb[i] = v;
                b_update[i] = -self.lr * (m / bc1) / ((v / bc2).sqrt() + self.eps);
            }
            out.push((w_update, b_update));
        }
        Gradients { layers: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Activation;

    fn quad_grads(theta: &[f64]) -> Gradients {
        // L(θ) = Σ (θ_i − i)², gradient 2(θ_i − i), packed as one "layer".
        let g: Vec<f64> = theta
            .iter()
            .enumerate()
            .map(|(i, t)| 2.0 * (t - i as f64))
            .collect();
        Gradients {
            layers: vec![(Matrix::row_vector(g), vec![])],
        }
    }

    fn minimize(opt: &mut dyn Optimizer, steps: usize) -> Vec<f64> {
        let mut theta = vec![5.0, -3.0, 10.0];
        for _ in 0..steps {
            let u = opt.updates(&quad_grads(&theta));
            for (t, &d) in theta.iter_mut().zip(u.layers[0].0.data()) {
                *t += d;
            }
        }
        theta
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let theta = minimize(&mut Sgd::new(0.1), 200);
        for (i, t) in theta.iter().enumerate() {
            assert!((t - i as f64).abs() < 1e-6, "theta[{i}] = {t}");
        }
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let theta = minimize(&mut Adam::new(0.2), 500);
        for (i, t) in theta.iter().enumerate() {
            assert!((t - i as f64).abs() < 1e-3, "theta[{i}] = {t}");
        }
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the very first Adam step ≈ lr in magnitude.
        let mut adam = Adam::new(0.01);
        let g = Gradients {
            layers: vec![(Matrix::row_vector(vec![3.7]), vec![])],
        };
        let u = adam.updates(&g);
        assert!((u.layers[0].0.data()[0].abs() - 0.01).abs() < 1e-6);
    }

    #[test]
    fn sgd_update_is_negative_scaled_gradient() {
        let mut sgd = Sgd::new(0.5);
        let g = Gradients {
            layers: vec![(Matrix::row_vector(vec![2.0, -4.0]), vec![1.0])],
        };
        let u = sgd.updates(&g);
        assert_eq!(u.layers[0].0.data(), &[-1.0, 2.0]);
        assert_eq!(u.layers[0].1, vec![-0.5]);
    }

    #[test]
    fn optimizers_train_networks_via_step() {
        // Fit y = x via Adam on an MLP — the full integration path.
        let mut net = Mlp::new(&[1, 8, 1], Activation::Tanh, Activation::Linear, 3);
        let mut adam = Adam::new(0.01);
        for _ in 0..800 {
            let xs = Matrix::from_vec(8, 1, (0..8).map(|i| i as f64 / 8.0 - 0.5).collect());
            let ys = net.forward_train(&xs);
            let mut d = ys.clone();
            for i in 0..8 {
                let target = xs.get(i, 0);
                d.set(i, 0, (ys.get(i, 0) - target) / 8.0);
            }
            let grads = net.backward(&d);
            adam.step(&mut net, &grads);
        }
        let err = (net.forward_one(&[0.25])[0] - 0.25).abs();
        assert!(err < 0.05, "error {err}");
    }

    #[test]
    #[should_panic(expected = "non-positive learning rate")]
    fn sgd_rejects_zero_lr() {
        let _ = Sgd::new(0.0);
    }
}
