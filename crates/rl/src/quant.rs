//! Int8 per-row-quantized frozen inference.
//!
//! The serving path of the frozen CMA2C actor is matmul-bound; this module
//! trades the f64 weights for an affine int8 encoding — one `(scale,
//! zero_point)` pair per **output row**, f32 accumulation — cutting the
//! weight footprint 8× and the inner loop to int8×f32 madds. Quantization
//! is a pure function of the exact parameters, so a [`QuantizedMlp`] can be
//! rebuilt deterministically from any checkpoint: nothing about the format
//! is persisted, and training never sees it.
//!
//! Encoding per output row: the representable range is the row's weight
//! range widened to include zero (`min' = min(0, min w)`, `max' = max(0,
//! max w)`), `scale = (max' − min') / 254`, `zero_point = round(−127 −
//! min'/scale)` — which lands in `[−127, 127]`, so the zero-point
//! correction below stays in well-conditioned f32 territory. Codes are
//! `clamp(round(w/scale) + zero_point, −127, 127)`. The round-trip error is
//! at most `scale/2` per weight (property-pinned in this module's tests,
//! including the clamp edges, where a half-step tie is the worst case).
//!
//! The forward pass never dequantizes the weight matrix: with `Σ_j q_ij·x_j`
//! accumulated in f32 and `sum_x = Σ_j x_j` computed once per input row,
//! `y_i = scale_i · (Σ_j q_ij·x_j − zp_i · sum_x) + b_i` — the standard
//! zero-point-correction identity. It is also exactly where a wrong
//! zero-point bites, which is what the `seeded-bug-quant` mutation smoke
//! plants and the testkit's `kernel-differential` oracle must catch.
//!
//! The pass is single-threaded and accumulates ascending-`j`: quantized
//! inference is deterministic across thread counts by construction.

use crate::matrix::Matrix;
use crate::mlp::{Activation, Mlp};

/// Codes per side of zero: int8 symmetric range `[-127, 127]` (−128 is
/// unused so negation can't overflow and the range is symmetric).
const Q_MAX: f64 = 127.0;

/// The quantized counterpart of one dense layer.
#[derive(Debug, Clone)]
struct QuantLayer {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `out_dim × in_dim` int8 codes.
    q: Vec<i8>,
    /// Per-output-row scale (always positive and normal).
    scale: Vec<f32>,
    /// Per-output-row zero point, in `[-127, 127]`.
    zero_point: Vec<i32>,
    bias: Vec<f32>,
    activation: Activation,
}

fn apply_f32(a: Activation, y: f32) -> f32 {
    match a {
        Activation::Relu => y.max(0.0),
        Activation::Tanh => y.tanh(),
        Activation::Linear => y,
    }
}

/// Per-row affine quantization parameters for a weight row.
/// Returns `(scale, zero_point)`; see the module docs for the encoding.
fn row_params(w: &[f64]) -> (f32, i32) {
    let mut lo = 0.0f64;
    let mut hi = 0.0f64;
    for &v in w {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let raw = (hi - lo) / (2.0 * Q_MAX);
    // Clamp into f32's normal range: an all-zero row (raw = 0) gets the
    // smallest normal scale and codes at the zero point — exact — while a
    // range overflowing f32 saturates at f32::MAX (bound still holds, it
    // is stated relative to the stored scale).
    let scale = (raw as f32).clamp(f32::MIN_POSITIVE, f32::MAX);
    let zp = (-Q_MAX - lo / f64::from(scale)).round() as i32;
    (scale, zp.clamp(-127, 127))
}

impl QuantLayer {
    fn quantize(w: &Matrix, b: &[f64], activation: Activation) -> QuantLayer {
        let (out_dim, in_dim) = (w.rows(), w.cols());
        let mut q = Vec::with_capacity(out_dim * in_dim);
        let mut scale = Vec::with_capacity(out_dim);
        let mut zero_point = Vec::with_capacity(out_dim);
        for i in 0..out_dim {
            let row = w.row(i);
            let (s, zp) = row_params(row);
            let sf = f64::from(s);
            for &v in row {
                let code = ((v / sf).round() + f64::from(zp)).clamp(-Q_MAX, Q_MAX);
                q.push(code as i8);
            }
            // Planted bug for the testkit mutation smoke: record a zero
            // point 16 steps off from the one the codes were encoded with,
            // skewing every dequantized logit by scale·16·sum_x. The
            // kernel-differential oracle must catch and shrink this.
            #[cfg(feature = "seeded-bug-quant")]
            let zp = zp + 16;
            scale.push(s);
            zero_point.push(zp);
        }
        QuantLayer {
            in_dim,
            out_dim,
            q,
            scale,
            zero_point,
            bias: b.iter().map(|&v| v as f32).collect(),
            activation,
        }
    }

    /// One layer forward: `src` is `rows × in_dim` row-major f32, `dst` is
    /// overwritten with `rows × out_dim`.
    fn forward(&self, src: &[f32], dst: &mut Vec<f32>, rows: usize) {
        dst.clear();
        dst.reserve(rows * self.out_dim);
        for r in 0..rows {
            let x = &src[r * self.in_dim..(r + 1) * self.in_dim];
            let sum_x: f32 = x.iter().sum();
            for i in 0..self.out_dim {
                let q_row = &self.q[i * self.in_dim..(i + 1) * self.in_dim];
                let acc = dot_q(q_row, x);
                let y = self.scale[i] * (acc - self.zero_point[i] as f32 * sum_x) + self.bias[i];
                dst.push(apply_f32(self.activation, y));
            }
        }
    }
}

/// Lanes in the unrolled int8 dot product below.
const Q_LANES: usize = 8;

/// `Σ q_j · x_j` with eight independent accumulators and a fixed reduction
/// tree. The lane shape depends only on `in_dim`, never on threading or
/// batch position, so quantized inference stays bit-identical at every
/// `FAIRMOVE_THREADS` setting — while the broken serial dependency chain
/// lets the compiler keep eight FMAs in flight.
#[inline]
fn dot_q(q_row: &[i8], x: &[f32]) -> f32 {
    let head = q_row.len() / Q_LANES * Q_LANES;
    let mut acc = [0.0f32; Q_LANES];
    for (qc, xc) in q_row[..head]
        .chunks_exact(Q_LANES)
        .zip(x[..head].chunks_exact(Q_LANES))
    {
        for (a, (&qv, &xv)) in acc.iter_mut().zip(qc.iter().zip(xc)) {
            *a += f32::from(qv) * xv;
        }
    }
    let mut tail = 0.0f32;
    for (&qv, &xv) in q_row[head..].iter().zip(&x[head..]) {
        tail += f32::from(qv) * xv;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

/// Two reusable f32 activation buffers for allocation-free quantized
/// inference — the [`crate::MlpWorkspace`] discipline, at half the width.
#[derive(Debug, Clone, Default)]
pub struct QuantWorkspace {
    ping: Vec<f32>,
    pong: Vec<f32>,
}

impl QuantWorkspace {
    /// An empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        QuantWorkspace::default()
    }

    /// High-water footprint of both buffers, for telemetry gauges.
    pub fn high_water_bytes(&self) -> usize {
        (self.ping.capacity() + self.pong.capacity()) * std::mem::size_of::<f32>()
    }
}

/// An int8 per-row-quantized snapshot of a frozen [`Mlp`] (see the module
/// docs for the format). Built with [`QuantizedMlp::from_mlp`]; serving
/// code swaps it in behind the same logits interface without touching
/// training.
#[derive(Debug, Clone)]
pub struct QuantizedMlp {
    layers: Vec<QuantLayer>,
    input_dim: usize,
    output_dim: usize,
}

impl QuantizedMlp {
    /// Quantizes a frozen network. Deterministic: equal parameters produce
    /// equal codes, so a policy re-quantized after checkpoint restore is
    /// bit-identical to the one that served before the crash.
    ///
    /// # Panics
    /// Panics if any parameter is non-finite (quantizing a poisoned network
    /// would silently encode garbage; callers gate on `params_finite`).
    pub fn from_mlp(mlp: &Mlp) -> QuantizedMlp {
        assert!(
            mlp.params_finite(),
            "cannot quantize a network with non-finite parameters"
        );
        QuantizedMlp {
            layers: mlp
                .layer_views()
                .map(|(w, b, act)| QuantLayer::quantize(w, b, act))
                .collect(),
            input_dim: mlp.input_dim(),
            output_dim: mlp.output_dim(),
        }
    }

    /// Input dimension.
    #[inline]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output dimension.
    #[inline]
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Weight bytes of the quantized encoding (codes only — the per-row
    /// scale/zero-point/bias sidecar is O(out_dim)).
    pub fn code_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.q.len()).sum()
    }

    /// Forward pass over a `rows × input_dim` f64 batch, writing the
    /// `rows × output_dim` outputs (row-major, converted back to f64) into
    /// `out`. Allocation-free at steady state via the workspace's ping-pong
    /// buffers; single-threaded and ascending-index, so the result is
    /// identical for every `FAIRMOVE_THREADS` setting.
    pub fn forward_into(&self, x: &Matrix, ws: &mut QuantWorkspace, out: &mut Vec<f64>) {
        assert_eq!(x.cols(), self.input_dim, "input width mismatch");
        let rows = x.rows();
        ws.ping.clear();
        ws.ping.extend(x.data().iter().map(|&v| v as f32));
        let mut in_ping = true;
        for layer in &self.layers {
            if in_ping {
                layer.forward(&ws.ping, &mut ws.pong, rows);
            } else {
                layer.forward(&ws.pong, &mut ws.ping, rows);
            }
            in_ping = !in_ping;
        }
        let last = if in_ping { &ws.ping } else { &ws.pong };
        out.clear();
        out.extend(last.iter().map(|&v| f64::from(v)));
    }

    /// Convenience: forward a single input vector.
    pub fn forward_one(&self, x: &[f64]) -> Vec<f64> {
        let mut ws = QuantWorkspace::new();
        let mut out = Vec::new();
        self.forward_into(&Matrix::row_vector(x.to_vec()), &mut ws, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Dequantized weight for an encoded row entry, using the *stored*
    /// scale/zero-point — i.e. what the forward pass effectively multiplies
    /// by. Under `seeded-bug-quant` the stored zero point is wrong, so the
    /// round-trip tests are ignored there (the bug is planted for the
    /// testkit's mutation smoke, not for this crate's own suite).
    fn dequant(layer: &QuantLayer, i: usize, j: usize) -> f64 {
        let q = f64::from(layer.q[i * layer.in_dim + j]);
        f64::from(layer.scale[i]) * (q - f64::from(layer.zero_point[i]))
    }

    fn round_trip_ok(rows: usize, cols: usize, data: Vec<f64>) {
        let w = Matrix::from_vec(rows, cols, data);
        let layer = QuantLayer::quantize(&w, &vec![0.0; rows], Activation::Linear);
        for i in 0..rows {
            let sf = f64::from(layer.scale[i]);
            assert!(sf > 0.0 && layer.scale[i].is_normal(), "row {i} scale {sf}");
            assert!(
                (-127..=127).contains(&layer.zero_point[i]),
                "row {i} zp {}",
                layer.zero_point[i]
            );
            for j in 0..cols {
                let err = (w.get(i, j) - dequant(&layer, i, j)).abs();
                // scale/2 plus a hair of f64 division/tie slack.
                assert!(
                    err <= sf * 0.5000001,
                    "row {i} col {j}: |{} - {}| = {err} > scale/2 = {}",
                    w.get(i, j),
                    dequant(&layer, i, j),
                    sf * 0.5
                );
            }
        }
    }

    #[test]
    #[cfg_attr(
        feature = "seeded-bug-quant",
        ignore = "planted zero-point bug breaks the round trip by design"
    )]
    fn round_trip_bound_on_adversarial_rows() {
        // Constant rows (positive, negative), all-zero, a single outlier,
        // subnormals, mixed magnitudes: the degenerate shapes where an
        // affine encoder's edge handling rots.
        round_trip_ok(1, 4, vec![3.25; 4]);
        round_trip_ok(1, 4, vec![-0.125; 4]);
        round_trip_ok(1, 6, vec![0.0; 6]);
        round_trip_ok(1, 5, vec![0.0, 0.0, 1e6, 0.0, 0.0]);
        round_trip_ok(1, 3, vec![f64::MIN_POSITIVE, 0.0, -f64::MIN_POSITIVE]);
        round_trip_ok(2, 4, vec![1e-30, -1e-30, 2e-30, 0.0, 5.0, -3.0, 0.25, 1e4]);
        round_trip_ok(1, 2, vec![1e-40, 3e-39]);
    }

    #[test]
    #[cfg_attr(
        feature = "seeded-bug-quant",
        ignore = "planted zero-point bug breaks the round trip by design"
    )]
    fn all_zero_and_constant_rows_are_exact() {
        let w = Matrix::from_vec(2, 3, vec![0.0, 0.0, 0.0, 2.5, 2.5, 2.5]);
        let layer = QuantLayer::quantize(&w, &[0.0, 0.0], Activation::Linear);
        for j in 0..3 {
            assert_eq!(dequant(&layer, 0, j), 0.0);
        }
        // A constant row c quantizes over the widened range [0, c]; c maps
        // to code ±127 exactly, so the constant round-trips within one ulp
        // of scale·127 — pin it well inside the scale/2 budget.
        for j in 0..3 {
            let err = (dequant(&layer, 1, j) - 2.5).abs();
            assert!(err <= f64::from(layer.scale[1]) * 0.5, "err {err}");
        }
    }

    #[test]
    #[cfg_attr(
        feature = "seeded-bug-quant",
        ignore = "planted zero-point bug pushes the drift past the budget by design"
    )]
    fn quantized_forward_tracks_exact_within_budget() {
        let net = Mlp::new(&[24, 64, 64, 10], Activation::Relu, Activation::Linear, 31);
        let q = QuantizedMlp::from_mlp(&net);
        assert_eq!(q.input_dim(), 24);
        assert_eq!(q.output_dim(), 10);
        let x = Matrix::from_vec(
            7,
            24,
            (0..7 * 24)
                .map(|i| (i * 37 % 101) as f64 / 50.5 - 1.0)
                .collect(),
        );
        let exact = net.forward(&x);
        let mut ws = QuantWorkspace::new();
        let mut out = Vec::new();
        q.forward_into(&x, &mut ws, &mut out);
        assert_eq!(out.len(), 7 * 10);
        let worst = exact
            .data()
            .iter()
            .zip(&out)
            .map(|(&e, &g)| (e - g).abs())
            .fold(0.0f64, f64::max);
        // He-init weights are O(0.3); per-weight error ≤ scale/2 ≈ 2e-3
        // accumulated over ≤ 64 terms and three layers stays well under
        // this (measured ~1e-2; the budget leaves headroom, while a wrong
        // zero point produces O(1) drift and fails it).
        assert!(worst < 0.2, "worst |Δlogit| = {worst}");
        #[cfg(not(feature = "seeded-bug-quant"))]
        assert!(worst > 0.0, "quantization should not be lossless here");
    }

    #[test]
    fn forward_is_workspace_and_batch_size_independent() {
        let net = Mlp::new(&[6, 16, 4], Activation::Relu, Activation::Linear, 7);
        let q = QuantizedMlp::from_mlp(&net);
        let x = Matrix::from_vec(3, 6, (0..18).map(|i| (i as f64) * 0.21 - 1.7).collect());
        let mut ws = QuantWorkspace::new();
        let mut batched = Vec::new();
        q.forward_into(&x, &mut ws, &mut batched);
        for r in 0..3 {
            let one = q.forward_one(x.row(r));
            assert_eq!(&batched[r * 4..(r + 1) * 4], one.as_slice(), "row {r}");
        }
        // Steady state is allocation-free: capacities stop growing.
        let bytes = ws.high_water_bytes();
        let mut again = Vec::new();
        q.forward_into(&x, &mut ws, &mut again);
        assert_eq!(again, batched);
        assert_eq!(ws.high_water_bytes(), bytes);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn from_mlp_rejects_poisoned_params() {
        let mut net = Mlp::new(&[3, 4, 2], Activation::Relu, Activation::Linear, 1);
        let mut params = net.export_params();
        *params[0].0.data_mut().first_mut().unwrap() = f64::NAN;
        net.import_params(&params).unwrap();
        let _ = QuantizedMlp::from_mlp(&net);
    }

    proptest! {
        #[test]
        #[cfg_attr(
            feature = "seeded-bug-quant",
            ignore = "planted zero-point bug breaks the round trip by design"
        )]
        fn round_trip_bound_on_random_matrices(
            rows in 1usize..5,
            cols in 1usize..20,
            base in proptest::collection::vec(-10.0..10.0f64, 100),
            magnitude in -8i32..8,
        ) {
            let m = 10f64.powi(magnitude);
            let data: Vec<f64> = (0..rows * cols)
                .map(|i| base[i % base.len()] * m)
                .collect();
            round_trip_ok(rows, cols, data);
        }
    }
}
