//! Exploration schedules.

use serde::{Deserialize, Serialize};

/// Linearly decaying ε for ε-greedy exploration: starts at `start`, reaches
/// `end` after `decay_steps` calls, stays there.
///
/// ```
/// use fairmove_rl::EpsilonSchedule;
/// let mut eps = EpsilonSchedule::new(1.0, 0.0, 2);
/// assert_eq!(eps.next_epsilon(), 1.0);
/// assert_eq!(eps.next_epsilon(), 0.5);
/// assert_eq!(eps.next_epsilon(), 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpsilonSchedule {
    start: f64,
    end: f64,
    decay_steps: u64,
    step: u64,
}

impl EpsilonSchedule {
    /// Builds a schedule.
    ///
    /// # Panics
    /// Panics unless `0 ≤ end ≤ start ≤ 1` and `decay_steps > 0`.
    pub fn new(start: f64, end: f64, decay_steps: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&start) && (0.0..=1.0).contains(&end) && end <= start,
            "bad epsilon range {start}..{end}"
        );
        assert!(decay_steps > 0, "zero decay steps");
        EpsilonSchedule {
            start,
            end,
            decay_steps,
            step: 0,
        }
    }

    /// A constant ε.
    pub fn constant(eps: f64) -> Self {
        Self::new(eps, eps, 1)
    }

    /// Current ε without advancing.
    pub fn current(&self) -> f64 {
        if self.step >= self.decay_steps {
            self.end
        } else {
            let frac = self.step as f64 / self.decay_steps as f64;
            self.start + (self.end - self.start) * frac
        }
    }

    /// Returns the current ε and advances one step.
    pub fn next_epsilon(&mut self) -> f64 {
        let eps = self.current();
        self.step += 1;
        eps
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decays_linearly_then_floors() {
        let mut s = EpsilonSchedule::new(1.0, 0.0, 4);
        assert_eq!(s.next_epsilon(), 1.0);
        assert_eq!(s.next_epsilon(), 0.75);
        assert_eq!(s.next_epsilon(), 0.5);
        assert_eq!(s.next_epsilon(), 0.25);
        assert_eq!(s.next_epsilon(), 0.0);
        assert_eq!(s.next_epsilon(), 0.0);
    }

    #[test]
    fn constant_never_changes() {
        let mut s = EpsilonSchedule::constant(0.1);
        for _ in 0..100 {
            assert!((s.next_epsilon() - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn current_does_not_advance() {
        let s = EpsilonSchedule::new(0.5, 0.1, 10);
        assert_eq!(s.current(), 0.5);
        assert_eq!(s.current(), 0.5);
        assert_eq!(s.steps(), 0);
    }

    #[test]
    #[should_panic(expected = "bad epsilon range")]
    fn rejects_end_above_start() {
        let _ = EpsilonSchedule::new(0.1, 0.5, 10);
    }
}
