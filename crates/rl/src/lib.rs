//! From-scratch deep-RL substrate for the FairMove reproduction.
//!
//! The paper trains its CMA2C (and the DQN/TQL/TBA baselines) with standard
//! deep-learning tooling; no such crate is in the allowed dependency set, so
//! this crate implements the minimum viable stack:
//!
//! * [`matrix::Matrix`] — row-major dense matrices with the handful of ops
//!   backprop needs;
//! * [`mlp::Mlp`] — multi-layer perceptrons with manual reverse-mode
//!   gradients (verified against finite differences in tests);
//! * [`optimizer::Adam`] / [`optimizer::Sgd`] — the optimizers the paper's
//!   experiments use (AdamOptimizer, lr = 0.001);
//! * [`loss`] — MSE for critics, softmax/log-softmax and the policy-gradient
//!   logit gradient for actors;
//! * [`replay::ReplayBuffer`] — uniform-sampling experience replay;
//! * [`schedule::EpsilonSchedule`] — linear ε-decay for ε-greedy exploration;
//! * [`tabular::QTable`] — the tabular Q-learning core of the TQL baseline.
//!
//! Networks here are CPU-scale MLPs over low-dimensional fleet state — the
//! same shape as the paper's, which are small dense networks, not conv nets.

pub mod loss;
pub mod matrix;
pub mod mlp;
pub mod optimizer;
pub mod quant;
pub mod replay;
pub mod schedule;
pub mod serialize;
pub mod store;
pub mod tabular;

pub use loss::{huber_loss, log_softmax, mse_loss, policy_gradient_logits, softmax};
pub use matrix::{kernel_backend, set_kernel_backend, KernelBackend, Matrix};
pub use mlp::{Activation, Gradients, Mlp, MlpWorkspace};
pub use optimizer::{Adam, Optimizer, Sgd};
pub use quant::{QuantWorkspace, QuantizedMlp};
pub use replay::ReplayBuffer;
pub use schedule::EpsilonSchedule;
pub use serialize::{load_mlp, load_mlp_from_path, save_mlp, save_mlp_to_path, LoadError};
pub use store::{read_verified, write_atomic, StoreError};
pub use tabular::QTable;
