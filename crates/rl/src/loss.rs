//! Loss functions and their output-side gradients.
//!
//! Critics train on MSE against TD targets (the paper's Eq. 6); actors train
//! on the policy gradient with the TD error as advantage (Eq. 8 + 11). For a
//! softmax policy over logits, ∂(−log π(a) · A)/∂logits has the closed form
//! `(softmax − onehot(a)) · A`, implemented in [`policy_gradient_logits`].

/// Numerically-stable softmax over `logits`.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    assert!(!logits.is_empty(), "softmax of empty slice");
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Numerically-stable log-softmax over `logits`.
pub fn log_softmax(logits: &[f64]) -> Vec<f64> {
    assert!(!logits.is_empty(), "log_softmax of empty slice");
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let log_sum: f64 = logits.iter().map(|&l| (l - max).exp()).sum::<f64>().ln() + max;
    logits.iter().map(|&l| l - log_sum).collect()
}

/// Mean squared error `mean((pred − target)²)` and its gradient
/// `2(pred − target)/n` per element.
pub fn mse_loss(pred: &[f64], target: &[f64]) -> (f64, Vec<f64>) {
    assert_eq!(pred.len(), target.len(), "MSE length mismatch");
    assert!(!pred.is_empty(), "MSE of empty slices");
    let n = pred.len() as f64;
    let mut loss = 0.0;
    let grad = pred
        .iter()
        .zip(target)
        .map(|(&p, &t)| {
            let d = p - t;
            loss += d * d;
            2.0 * d / n
        })
        .collect();
    (loss / n, grad)
}

/// Gradient of the policy-gradient loss `−log π(action) · advantage` with
/// respect to the *logits* of a softmax policy:
/// `(softmax(logits) − onehot(action)) · advantage`.
///
/// Only the first `n_valid` logits are treated as admissible actions; the
/// rest (action-space padding) receive zero gradient and are assumed to have
/// been masked to `−∞`-like values before the softmax by the caller.
pub fn policy_gradient_logits(
    logits: &[f64],
    n_valid: usize,
    action: usize,
    advantage: f64,
) -> Vec<f64> {
    assert!(n_valid >= 1 && n_valid <= logits.len(), "bad n_valid");
    assert!(action < n_valid, "action {action} out of {n_valid}");
    let probs = softmax(&logits[..n_valid]);
    let mut grad = vec![0.0; logits.len()];
    for (i, &p) in probs.iter().enumerate() {
        let indicator = if i == action { 1.0 } else { 0.0 };
        grad[i] = (p - indicator) * advantage;
    }
    grad
}

/// Huber (smooth-L1) loss `mean(h(pred − target))` and its gradient, with
/// `h(d) = d²/2` for `|d| ≤ δ` and `δ(|d| − δ/2)` beyond. The standard
/// robust critic loss for TD targets with outliers (DQN uses it here).
pub fn huber_loss(pred: &[f64], target: &[f64], delta: f64) -> (f64, Vec<f64>) {
    assert_eq!(pred.len(), target.len(), "Huber length mismatch");
    assert!(!pred.is_empty(), "Huber of empty slices");
    assert!(delta > 0.0, "non-positive delta");
    let n = pred.len() as f64;
    let mut loss = 0.0;
    let grad = pred
        .iter()
        .zip(target)
        .map(|(&p, &t)| {
            let d = p - t;
            if d.abs() <= delta {
                loss += 0.5 * d * d;
                d / n
            } else {
                loss += delta * (d.abs() - 0.5 * delta);
                delta * d.signum() / n
            }
        })
        .collect();
    (loss / n, grad)
}

/// Entropy of a probability distribution (for entropy-bonus regularization).
pub fn entropy(probs: &[f64]) -> f64 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn softmax_sums_to_one_and_preserves_order() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] < p[1] && p[1] < p[2]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let p = softmax(&[-1e6, 0.0, 1e6]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!((p[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let logits = [0.5, -1.2, 2.0, 0.0];
        let ls = log_softmax(&logits);
        let p = softmax(&logits);
        for (l, q) in ls.iter().zip(&p) {
            assert!((l - q.ln()).abs() < 1e-12);
        }
    }

    #[test]
    fn mse_known_value() {
        let (loss, grad) = mse_loss(&[1.0, 2.0], &[0.0, 4.0]);
        // ((1)² + (−2)²)/2 = 2.5
        assert!((loss - 2.5).abs() < 1e-12);
        assert_eq!(grad, vec![1.0, -2.0]);
    }

    #[test]
    fn huber_matches_mse_inside_delta() {
        let (hl, hg) = huber_loss(&[1.0, 2.0], &[0.5, 2.2], 10.0);
        let (ml, mg) = mse_loss(&[1.0, 2.0], &[0.5, 2.2]);
        assert!((hl - ml / 2.0).abs() < 1e-12, "{hl} vs {ml}");
        for (h, m) in hg.iter().zip(&mg) {
            assert!((h - m / 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn huber_clips_outlier_gradients() {
        let (_, g) = huber_loss(&[100.0], &[0.0], 1.0);
        assert!((g[0] - 1.0).abs() < 1e-12, "gradient should clip at delta");
        let (_, g) = huber_loss(&[-100.0], &[0.0], 1.0);
        assert!((g[0] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn huber_is_continuous_at_delta() {
        let delta = 1.0;
        let below = huber_loss(&[delta - 1e-9], &[0.0], delta).0;
        let above = huber_loss(&[delta + 1e-9], &[0.0], delta).0;
        assert!((below - above).abs() < 1e-6);
    }

    #[test]
    fn mse_zero_at_target() {
        let (loss, grad) = mse_loss(&[3.0, -1.0], &[3.0, -1.0]);
        assert_eq!(loss, 0.0);
        assert!(grad.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn policy_gradient_points_away_from_chosen_on_positive_advantage() {
        // Positive advantage → gradient of the *loss* is negative on the
        // chosen action (descent increases its probability).
        let g = policy_gradient_logits(&[0.0, 0.0, 0.0], 3, 1, 2.0);
        assert!(g[1] < 0.0);
        assert!(g[0] > 0.0 && g[2] > 0.0);
        // Gradient sums to zero over valid actions (softmax structure).
        assert!((g.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn policy_gradient_flips_with_negative_advantage() {
        let pos = policy_gradient_logits(&[0.1, 0.2], 2, 0, 1.0);
        let neg = policy_gradient_logits(&[0.1, 0.2], 2, 0, -1.0);
        for (p, n) in pos.iter().zip(&neg) {
            assert!((p + n).abs() < 1e-12);
        }
    }

    #[test]
    fn policy_gradient_pads_invalid_actions_with_zero() {
        let g = policy_gradient_logits(&[0.0, 0.0, 9.9, 9.9], 2, 0, 1.0);
        assert_eq!(g[2], 0.0);
        assert_eq!(g[3], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn policy_gradient_rejects_invalid_action() {
        let _ = policy_gradient_logits(&[0.0, 0.0], 2, 2, 1.0);
    }

    #[test]
    fn entropy_is_max_for_uniform() {
        let u = entropy(&[0.25; 4]);
        let skewed = entropy(&[0.97, 0.01, 0.01, 0.01]);
        assert!(u > skewed);
        assert!((u - 4.0f64.ln()).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn softmax_always_a_distribution(logits in proptest::collection::vec(-50.0..50.0f64, 1..10)) {
            let p = softmax(&logits);
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }

        #[test]
        fn mse_grad_is_descent_direction(pred in proptest::collection::vec(-10.0..10.0f64, 1..8),
                                         target in proptest::collection::vec(-10.0..10.0f64, 8)) {
            let t = &target[..pred.len()];
            let (loss, grad) = mse_loss(&pred, t);
            let stepped: Vec<f64> = pred.iter().zip(&grad).map(|(p, g)| p - 0.01 * g).collect();
            let (loss2, _) = mse_loss(&stepped, t);
            prop_assert!(loss2 <= loss + 1e-12);
        }
    }
}
