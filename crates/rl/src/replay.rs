//! Experience replay: a fixed-capacity ring buffer with uniform sampling.

use rand::rngs::StdRng;
use rand::Rng;

/// A ring buffer of transitions with uniform random sampling.
///
/// ```
/// use fairmove_rl::ReplayBuffer;
/// let mut buf = ReplayBuffer::new(2);
/// buf.push(1);
/// buf.push(2);
/// buf.push(3); // evicts 1
/// assert_eq!(buf.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ReplayBuffer<T> {
    capacity: usize,
    items: Vec<T>,
    /// Next write position once the buffer is full.
    head: usize,
}

impl<T: Clone> ReplayBuffer<T> {
    /// A buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity replay buffer");
        ReplayBuffer {
            capacity,
            items: Vec::with_capacity(capacity.min(4096)),
            head: 0,
        }
    }

    /// Number of stored transitions.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts a transition, evicting the oldest once full.
    pub fn push(&mut self, item: T) {
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            self.items[self.head] = item;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Samples `n` transitions uniformly with replacement. Returns fewer
    /// only if the buffer is empty (then returns none). The empty case
    /// consumes no RNG draws, so an early training step that finds nothing
    /// to learn from cannot shift later sampling streams.
    pub fn sample(&self, rng: &mut StdRng, n: usize) -> Vec<&T> {
        if self.items.is_empty() {
            return Vec::new();
        }
        (0..n)
            .map(|_| &self.items[rng.gen_range(0..self.items.len())])
            .collect()
    }

    /// Iterates over all stored transitions (no particular order guarantee
    /// once the buffer has wrapped).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Drops all stored transitions.
    pub fn clear(&mut self) {
        self.items.clear();
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fills_then_wraps() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..5 {
            b.push(i);
        }
        assert_eq!(b.len(), 3);
        let contents: Vec<i32> = b.iter().copied().collect();
        // 0 and 1 were evicted.
        assert!(contents.contains(&2) && contents.contains(&3) && contents.contains(&4));
    }

    #[test]
    fn sample_returns_requested_count() {
        let mut b = ReplayBuffer::new(10);
        for i in 0..4 {
            b.push(i);
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(b.sample(&mut rng, 32).len(), 32);
    }

    #[test]
    fn sample_from_empty_is_empty() {
        let b: ReplayBuffer<i32> = ReplayBuffer::new(10);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(b.sample(&mut rng, 8).is_empty());
    }

    #[test]
    fn sample_from_empty_consumes_no_randomness() {
        let b: ReplayBuffer<i32> = ReplayBuffer::new(10);
        let mut sampled = StdRng::seed_from_u64(7);
        let mut untouched = StdRng::seed_from_u64(7);
        let _ = b.sample(&mut sampled, 64);
        assert_eq!(
            sampled.gen::<u64>(),
            untouched.gen::<u64>(),
            "empty sample must leave the RNG stream unchanged"
        );
    }

    #[test]
    fn sample_zero_requests_is_empty() {
        let mut b = ReplayBuffer::new(4);
        b.push(1);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(b.sample(&mut rng, 0).is_empty());
    }

    #[test]
    fn sample_covers_contents() {
        let mut b = ReplayBuffer::new(4);
        for i in 0..4 {
            b.push(i);
        }
        let mut rng = StdRng::seed_from_u64(2);
        let seen: std::collections::HashSet<i32> =
            b.sample(&mut rng, 200).into_iter().copied().collect();
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn clear_empties() {
        let mut b = ReplayBuffer::new(4);
        b.push(1);
        b.clear();
        assert!(b.is_empty());
        b.push(2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_rejected() {
        let _: ReplayBuffer<i32> = ReplayBuffer::new(0);
    }

    #[test]
    fn long_wrap_preserves_capacity_invariant() {
        let mut b = ReplayBuffer::new(7);
        for i in 0..1000 {
            b.push(i);
            assert!(b.len() <= 7);
        }
        // The newest item is always present.
        assert!(b.iter().any(|&x| x == 999));
    }
}
