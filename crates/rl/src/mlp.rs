//! Multi-layer perceptrons with manual reverse-mode gradients.
//!
//! The paper's actor and critic are small dense networks over fleet-state
//! features; an MLP with ReLU hidden layers is the faithful architecture.
//! Gradients are hand-derived and verified against finite differences in
//! this module's tests.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Element-wise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)` — the hidden-layer default.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (linear output heads: Q-values, state values, logits).
    Linear,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Linear => x,
        }
    }

    /// Derivative given the *pre-activation* input `z`.
    fn derivative(self, z: f64) -> f64 {
        match self {
            Activation::Relu => {
                if z > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = z.tanh();
                1.0 - t * t
            }
            Activation::Linear => 1.0,
        }
    }
}

/// One dense layer: `y = act(x · Wᵀ + b)`, `W` is `out × in`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Dense {
    w: Matrix,
    b: Vec<f64>,
    activation: Activation,
    /// Cached input from the last `forward_train` call.
    #[serde(skip)]
    input: Option<Matrix>,
    /// Cached pre-activation from the last `forward_train` call.
    #[serde(skip)]
    pre_activation: Option<Matrix>,
}

impl Dense {
    fn new(input_dim: usize, output_dim: usize, activation: Activation, rng: &mut StdRng) -> Self {
        // He init for ReLU, Xavier otherwise.
        let scale = match activation {
            Activation::Relu => (2.0 / input_dim as f64).sqrt(),
            _ => (1.0 / input_dim as f64).sqrt(),
        };
        let data = (0..input_dim * output_dim)
            .map(|_| rng.gen_range(-1.0..1.0) * scale)
            .collect();
        Dense {
            w: Matrix::from_vec(output_dim, input_dim, data),
            b: vec![0.0; output_dim],
            activation,
            input: None,
            pre_activation: None,
        }
    }

    fn forward(&self, x: &Matrix) -> Matrix {
        let mut z = x.matmul_transpose_b(&self.w);
        z.add_row_broadcast(&self.b);
        z.map_inplace(|v| self.activation.apply(v));
        z
    }

    /// [`Self::forward`] into a caller-owned matrix: same kernel with the
    /// same auto thread count, so the output bits match exactly — only the
    /// allocation is gone.
    fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_transpose_b_into(&self.w, out);
        out.add_row_broadcast(&self.b);
        out.map_inplace(|v| self.activation.apply(v));
    }

    fn forward_train(&mut self, x: &Matrix) -> Matrix {
        let mut z = x.matmul_transpose_b(&self.w);
        z.add_row_broadcast(&self.b);
        self.input = Some(x.clone());
        self.pre_activation = Some(z.clone());
        z.map_inplace(|v| self.activation.apply(v));
        z
    }

    /// Backprop through the layer. `d_out` is ∂L/∂y (batch × out).
    /// Returns `(dW, db, dX)`.
    fn backward(&self, d_out: &Matrix) -> (Matrix, Vec<f64>, Matrix) {
        let x = self.input.as_ref().expect("backward before forward_train");
        let z = self
            .pre_activation
            .as_ref()
            .expect("backward before forward_train");
        // dZ = dY ⊙ act'(Z)
        let mut dz = d_out.clone();
        for (dv, &zv) in dz.data_mut().iter_mut().zip(z.data()) {
            *dv *= self.activation.derivative(zv);
        }
        // dW = dZᵀ · X  (out × in)
        let dw = dz.transpose_a_matmul(x);
        let db = dz.column_sums();
        // dX = dZ · W  (batch × in)
        let dx = dz.matmul(&self.w);
        (dw, db, dx)
    }
}

/// Two reusable activation matrices for allocation-free MLP inference:
/// layer `i` writes into one while reading the other (ping-pong), so any
/// network depth needs exactly two buffers. One workspace serves any number
/// of MLPs and batch sizes — buffers are resized in place and only ever
/// grow to the largest activation seen.
#[derive(Debug, Clone)]
pub struct MlpWorkspace {
    ping: Matrix,
    pong: Matrix,
}

impl Default for MlpWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl MlpWorkspace {
    /// An empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        MlpWorkspace {
            ping: Matrix::zeros(0, 0),
            pong: Matrix::zeros(0, 0),
        }
    }

    /// High-water footprint of both buffers, for telemetry gauges.
    pub fn high_water_bytes(&self) -> usize {
        self.ping.capacity_bytes() + self.pong.capacity_bytes()
    }
}

/// Per-layer parameter gradients from one backward pass.
#[derive(Debug, Clone)]
pub struct Gradients {
    /// `(dW, db)` per layer, input side first.
    pub layers: Vec<(Matrix, Vec<f64>)>,
}

impl Gradients {
    /// Global L2 norm across all parameters (for gradient clipping).
    pub fn global_norm(&self) -> f64 {
        let mut sum = 0.0;
        for (dw, db) in &self.layers {
            sum += dw.data().iter().map(|v| v * v).sum::<f64>();
            sum += db.iter().map(|v| v * v).sum::<f64>();
        }
        sum.sqrt()
    }

    /// Scales every gradient so the global norm is at most `max_norm`.
    pub fn clip_global_norm(&mut self, max_norm: f64) {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for (dw, db) in &mut self.layers {
                dw.scale_inplace(s);
                for v in db {
                    *v *= s;
                }
            }
        }
    }
}

/// A feed-forward network of [`Dense`] layers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    sizes: Vec<usize>,
}

impl Mlp {
    /// Builds an MLP with the given layer `sizes` (input first, output
    /// last), `hidden` activation on all but the last layer, and `output`
    /// activation on the last.
    ///
    /// # Panics
    /// Panics if fewer than two sizes are given.
    pub fn new(sizes: &[usize], hidden: Activation, output: Activation, seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == sizes.len() { output } else { hidden };
                Dense::new(w[0], w[1], act, &mut rng)
            })
            .collect();
        Mlp {
            layers,
            sizes: sizes.to_vec(),
        }
    }

    /// Input dimension.
    #[inline]
    pub fn input_dim(&self) -> usize {
        self.sizes[0]
    }

    /// Output dimension.
    #[inline]
    pub fn output_dim(&self) -> usize {
        *self.sizes.last().expect("non-empty sizes")
    }

    /// Inference forward pass (no caches touched).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut h = self.layers[0].forward(x);
        for layer in &self.layers[1..] {
            h = layer.forward(&h);
        }
        h
    }

    /// Inference forward pass through a reusable [`MlpWorkspace`]:
    /// bit-identical to [`Self::forward`] (same kernels, same thread
    /// selection) but the per-layer activation matrices live in the
    /// workspace's two ping-pong buffers, so steady-state inference
    /// performs zero heap allocations. The returned reference points into
    /// the workspace and is valid until its next use.
    pub fn forward_scratch<'w>(&self, x: &Matrix, ws: &'w mut MlpWorkspace) -> &'w Matrix {
        self.layers[0].forward_into(x, &mut ws.ping);
        let mut in_ping = true;
        for layer in &self.layers[1..] {
            if in_ping {
                layer.forward_into(&ws.ping, &mut ws.pong);
            } else {
                layer.forward_into(&ws.pong, &mut ws.ping);
            }
            in_ping = !in_ping;
        }
        if in_ping {
            &ws.ping
        } else {
            &ws.pong
        }
    }

    /// Convenience: forward a single input vector.
    pub fn forward_one(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim(), "input width mismatch");
        self.forward(&Matrix::row_vector(x.to_vec()))
            .data()
            .to_vec()
    }

    /// Training forward pass: caches activations for [`Self::backward`].
    pub fn forward_train(&mut self, x: &Matrix) -> Matrix {
        let mut h = self.layers[0].forward_train(x);
        for layer in &mut self.layers[1..] {
            h = layer.forward_train(&h);
        }
        h
    }

    /// Backward pass from ∂L/∂output. Must follow a `forward_train` on the
    /// same input.
    pub fn backward(&mut self, d_out: &Matrix) -> Gradients {
        let mut grads = vec![None; self.layers.len()];
        let mut d = d_out.clone();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let (dw, db, dx) = layer.backward(&d);
            grads[i] = Some((dw, db));
            d = dx;
        }
        Gradients {
            layers: grads.into_iter().map(|g| g.expect("filled")).collect(),
        }
    }

    /// Applies parameter updates: `param += delta` where `delta` comes from
    /// an optimizer's transformation of the gradients.
    pub fn apply_updates(&mut self, updates: &Gradients) {
        assert_eq!(updates.layers.len(), self.layers.len());
        for (layer, (dw, db)) in self.layers.iter_mut().zip(&updates.layers) {
            for (w, &g) in layer.w.data_mut().iter_mut().zip(dw.data()) {
                *w += g;
            }
            for (b, &g) in layer.b.iter_mut().zip(db) {
                *b += g;
            }
        }
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.data().len() + l.b.len())
            .sum()
    }

    /// Copies parameters from another identically-shaped MLP (target-network
    /// sync in DQN/actor-critic).
    ///
    /// # Panics
    /// Panics on architecture mismatch.
    pub fn copy_params_from(&mut self, other: &Mlp) {
        assert_eq!(self.sizes, other.sizes, "architecture mismatch");
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.w = b.w.clone();
            a.b = b.b.clone();
        }
    }

    /// Soft-updates parameters toward `other`: `θ ← (1−τ)θ + τθ'`.
    pub fn soft_update_from(&mut self, other: &Mlp, tau: f64) {
        assert_eq!(self.sizes, other.sizes, "architecture mismatch");
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            for (w, &w2) in a.w.data_mut().iter_mut().zip(b.w.data()) {
                *w = (1.0 - tau) * *w + tau * w2;
            }
            for (bv, &b2) in a.b.iter_mut().zip(&b.b) {
                *bv = (1.0 - tau) * *bv + tau * b2;
            }
        }
    }

    /// Whether every weight and bias is finite. A single NaN/Inf parameter
    /// poisons all future forward passes, so policies expose this as their
    /// health check for the watchdog / resilience layer.
    pub fn params_finite(&self) -> bool {
        self.layers
            .iter()
            .all(|l| l.w.data().iter().all(|v| v.is_finite()) && l.b.iter().all(|v| v.is_finite()))
    }

    /// The layer shapes `(out, in)` for building optimizer state.
    pub fn layer_shapes(&self) -> Vec<(usize, usize)> {
        self.layers
            .iter()
            .map(|l| (l.w.rows(), l.w.cols()))
            .collect()
    }

    /// Per-layer `(weights, biases, activation)` views for the int8
    /// quantizer ([`crate::quant::QuantizedMlp::from_mlp`]).
    pub(crate) fn layer_views(&self) -> impl Iterator<Item = (&Matrix, &[f64], Activation)> {
        self.layers
            .iter()
            .map(|l| (&l.w, l.b.as_slice(), l.activation))
    }

    /// Copies out all parameters as `(weights, biases)` per layer
    /// (model persistence; see [`crate::serialize`]).
    pub fn export_params(&self) -> Vec<(Matrix, Vec<f64>)> {
        self.layers
            .iter()
            .map(|l| (l.w.clone(), l.b.clone()))
            .collect()
    }

    /// Replaces all parameters. Shapes must match the architecture.
    pub fn import_params(&mut self, params: &[(Matrix, Vec<f64>)]) -> Result<(), String> {
        if params.len() != self.layers.len() {
            return Err(format!(
                "layer count mismatch: {} vs {}",
                params.len(),
                self.layers.len()
            ));
        }
        for (layer, (w, b)) in self.layers.iter_mut().zip(params) {
            if (w.rows(), w.cols()) != (layer.w.rows(), layer.w.cols()) || b.len() != layer.b.len()
            {
                return Err(format!(
                    "shape mismatch: {}x{} vs {}x{}",
                    w.rows(),
                    w.cols(),
                    layer.w.rows(),
                    layer.w.cols()
                ));
            }
            layer.w = w.clone();
            layer.b = b.clone();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check: the cornerstone test for any
    /// hand-written backprop.
    #[test]
    fn gradients_match_finite_differences() {
        let mut net = Mlp::new(&[3, 5, 2], Activation::Tanh, Activation::Linear, 7);
        let x = Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 0.1, 0.3, -0.7]);
        let target = Matrix::from_vec(2, 2, vec![1.0, -1.0, 0.5, 0.25]);

        // Loss = 0.5 Σ (y - t)²; dL/dy = y - t.
        let loss = |net: &Mlp| -> f64 {
            let y = net.forward(&x);
            y.data()
                .iter()
                .zip(target.data())
                .map(|(a, b)| 0.5 * (a - b).powi(2))
                .sum()
        };

        let y = net.forward_train(&x);
        let mut d = y.clone();
        for (dv, &t) in d.data_mut().iter_mut().zip(target.data()) {
            *dv -= t;
        }
        let grads = net.backward(&d);

        let eps = 1e-6;
        for li in 0..grads.layers.len() {
            // Check a handful of weight entries per layer.
            let n = grads.layers[li].0.data().len();
            for pi in [0, n / 2, n - 1] {
                let mut plus = net.clone();
                plus.layers[li].w.data_mut()[pi] += eps;
                let mut minus = net.clone();
                minus.layers[li].w.data_mut()[pi] -= eps;
                let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
                let analytic = grads.layers[li].0.data()[pi];
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "layer {li} w[{pi}]: numeric {numeric} vs analytic {analytic}"
                );
            }
            // And the first bias.
            let mut plus = net.clone();
            plus.layers[li].b[0] += eps;
            let mut minus = net.clone();
            minus.layers[li].b[0] -= eps;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            let analytic = grads.layers[li].1[0];
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "layer {li} b[0]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn relu_gradients_match_finite_differences() {
        let mut net = Mlp::new(&[2, 4, 1], Activation::Relu, Activation::Linear, 3);
        let x = Matrix::from_vec(1, 2, vec![0.7, -0.3]);
        let loss = |net: &Mlp| -> f64 {
            let y = net.forward(&x);
            0.5 * y.data()[0].powi(2)
        };
        let y = net.forward_train(&x);
        let grads = net.backward(&y);
        let eps = 1e-6;
        let analytic = grads.layers[0].0.data()[0];
        let mut plus = net.clone();
        plus.layers[0].w.data_mut()[0] += eps;
        let mut minus = net.clone();
        minus.layers[0].w.data_mut()[0] -= eps;
        let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
        assert!(
            (numeric - analytic).abs() < 1e-5,
            "numeric {numeric} vs analytic {analytic}"
        );
    }

    #[test]
    fn forward_shapes() {
        let net = Mlp::new(&[4, 8, 8, 3], Activation::Relu, Activation::Linear, 1);
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.output_dim(), 3);
        let x = Matrix::zeros(5, 4);
        let y = net.forward(&x);
        assert_eq!((y.rows(), y.cols()), (5, 3));
        assert_eq!(net.forward_one(&[0.0; 4]).len(), 3);
    }

    #[test]
    fn forward_scratch_matches_forward_bitwise() {
        let mut ws = MlpWorkspace::new();
        // Odd and even depths land the result in different ping-pong
        // buffers; both must match the allocating pass exactly.
        for sizes in [
            vec![4, 3],
            vec![4, 8, 3],
            vec![4, 8, 8, 3],
            vec![4, 16, 8, 4, 2],
        ] {
            let net = Mlp::new(&sizes, Activation::Relu, Activation::Linear, 42);
            let x = Matrix::from_vec(
                3,
                4,
                (0..12).map(|i| (i as f64) * 0.37 - 1.9).collect::<Vec<_>>(),
            );
            let expected = net.forward(&x);
            let got = net.forward_scratch(&x, &mut ws);
            assert_eq!(got, &expected, "sizes={sizes:?}");
        }
    }

    #[test]
    fn forward_scratch_reuses_buffers_across_calls() {
        let net = Mlp::new(&[4, 8, 8, 3], Activation::Relu, Activation::Linear, 1);
        let x = Matrix::zeros(5, 4);
        let mut ws = MlpWorkspace::new();
        let _ = net.forward_scratch(&x, &mut ws);
        let bytes = ws.high_water_bytes();
        assert!(bytes > 0);
        for _ in 0..10 {
            let _ = net.forward_scratch(&x, &mut ws);
        }
        assert_eq!(ws.high_water_bytes(), bytes, "buffers must not regrow");
    }

    #[test]
    fn num_params_counts_weights_and_biases() {
        let net = Mlp::new(&[3, 5, 2], Activation::Relu, Activation::Linear, 1);
        // 3*5 + 5 + 5*2 + 2 = 32.
        assert_eq!(net.num_params(), 32);
    }

    #[test]
    fn deterministic_initialization() {
        let a = Mlp::new(&[3, 4, 2], Activation::Relu, Activation::Linear, 9);
        let b = Mlp::new(&[3, 4, 2], Activation::Relu, Activation::Linear, 9);
        let x = Matrix::from_vec(1, 3, vec![0.1, 0.2, 0.3]);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn copy_params_makes_outputs_equal() {
        let src = Mlp::new(&[3, 4, 2], Activation::Relu, Activation::Linear, 1);
        let mut dst = Mlp::new(&[3, 4, 2], Activation::Relu, Activation::Linear, 2);
        let x = Matrix::from_vec(1, 3, vec![0.5, -0.5, 1.0]);
        assert_ne!(src.forward(&x), dst.forward(&x));
        dst.copy_params_from(&src);
        assert_eq!(src.forward(&x), dst.forward(&x));
    }

    #[test]
    fn soft_update_converges_to_source() {
        let src = Mlp::new(&[2, 3, 1], Activation::Tanh, Activation::Linear, 1);
        let mut dst = Mlp::new(&[2, 3, 1], Activation::Tanh, Activation::Linear, 2);
        for _ in 0..200 {
            dst.soft_update_from(&src, 0.1);
        }
        let x = Matrix::from_vec(1, 2, vec![0.3, 0.6]);
        let a = src.forward(&x).data()[0];
        let b = dst.forward(&x).data()[0];
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn gradient_clipping_bounds_norm() {
        let mut net = Mlp::new(&[2, 4, 2], Activation::Relu, Activation::Linear, 5);
        let x = Matrix::from_vec(1, 2, vec![100.0, -100.0]);
        let y = net.forward_train(&x);
        let mut grads = net.backward(&y);
        grads.clip_global_norm(1.0);
        assert!(grads.global_norm() <= 1.0 + 1e-9);
    }

    #[test]
    fn params_finite_detects_poisoned_weights() {
        let mut net = Mlp::new(&[3, 4, 2], Activation::Relu, Activation::Linear, 1);
        assert!(net.params_finite());
        let mut params = net.export_params();
        *params[0].0.data_mut().first_mut().unwrap() = f64::NAN;
        net.import_params(&params).unwrap();
        assert!(!net.params_finite());
    }

    #[test]
    #[should_panic(expected = "architecture mismatch")]
    fn copy_params_rejects_mismatch() {
        let src = Mlp::new(&[3, 4, 2], Activation::Relu, Activation::Linear, 1);
        let mut dst = Mlp::new(&[3, 5, 2], Activation::Relu, Activation::Linear, 1);
        dst.copy_params_from(&src);
    }

    #[test]
    fn can_learn_a_linear_map_with_sgd_style_updates() {
        // y = 0.4x0 - 0.6x1, fit with plain gradient steps applied via
        // apply_updates (negative gradients).
        let mut net = Mlp::new(&[2, 16, 1], Activation::Tanh, Activation::Linear, 11);
        let data: Vec<([f64; 2], f64)> = (0..50)
            .map(|i| {
                let x0 = (i as f64 / 25.0) - 1.0;
                let x1 = ((i * 7 % 50) as f64 / 25.0) - 1.0;
                ([x0, x1], 0.4 * x0 - 0.6 * x1)
            })
            .collect();
        let lr = 0.05;
        for _ in 0..1500 {
            let xs = Matrix::from_vec(data.len(), 2, data.iter().flat_map(|d| d.0).collect());
            let ys = net.forward_train(&xs);
            let mut d = ys.clone();
            for (i, (_, t)) in data.iter().enumerate() {
                d.set(i, 0, (ys.get(i, 0) - t) / data.len() as f64);
            }
            let mut grads = net.backward(&d);
            for (dw, db) in &mut grads.layers {
                dw.scale_inplace(-lr);
                for v in db {
                    *v *= -lr;
                }
            }
            net.apply_updates(&grads);
        }
        let mut worst: f64 = 0.0;
        for (x, t) in &data {
            let y = net.forward_one(x)[0];
            worst = worst.max((y - t).abs());
        }
        assert!(worst < 0.1, "worst error {worst}");
    }
}
