//! Crash-safe checkpoint storage: atomic writes with an integrity footer.
//!
//! Every checkpoint the workspace persists (policy snapshots, watchdog
//! checkpoints, the dispatch server's state images) goes through
//! [`write_atomic`] / [`read_verified`]. The write discipline is the
//! classic tmp + fsync + rename + fsync-dir sequence, so a crash at any
//! instant leaves either the previous file or the new one — never a blend.
//! The footer (payload length + CRC-32 + trailing magic) makes the
//! *contents* self-validating on top of that: a file torn at any byte
//! boundary, or bit-flipped anywhere, is rejected by [`read_verified`]
//! instead of being half-trusted (pinned by a truncate-at-every-byte test).
//!
//! Layout: `payload ‖ len:u64-LE ‖ crc32(payload):u32-LE ‖ "FMCKPTEN"`.
//! The magic sits at the *end* because torn writes truncate tails: a
//! partial file fails the cheapest check first.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Trailing magic; its absence is the fast-path rejection for torn files.
pub const FOOTER_MAGIC: &[u8; 8] = b"FMCKPTEN";
/// Total footer bytes appended to the payload.
pub const FOOTER_LEN: usize = 8 + 4 + 8;

/// Why a checkpoint file was rejected.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// File shorter than the footer — a torn write or not a checkpoint.
    TooShort,
    /// Trailing magic missing — torn write or foreign file.
    BadMagic,
    /// Footer length disagrees with the file size.
    LengthMismatch {
        /// Payload length the footer declares.
        declared: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// Payload checksum mismatch — corruption within the payload bytes.
    CrcMismatch,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "checkpoint io error: {e}"),
            StoreError::TooShort => write!(f, "checkpoint file shorter than its footer"),
            StoreError::BadMagic => write!(f, "checkpoint footer magic missing (torn write?)"),
            StoreError::LengthMismatch { declared, actual } => write!(
                f,
                "checkpoint length mismatch: footer declares {declared} bytes, file holds {actual}"
            ),
            StoreError::CrcMismatch => write!(f, "checkpoint payload failed CRC validation"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected), the polynomial every `cksum`-adjacent
/// tool speaks. Bitwise, table-free: checkpoint volumes are far too small
/// for the table variant to matter.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The footer for `payload`, ready to append.
pub fn footer_for(payload: &[u8]) -> [u8; FOOTER_LEN] {
    let mut footer = [0u8; FOOTER_LEN];
    footer[..8].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    footer[8..12].copy_from_slice(&crc32(payload).to_le_bytes());
    footer[12..].copy_from_slice(FOOTER_MAGIC);
    footer
}

/// Writes `payload` + integrity footer to `path` atomically: the bytes land
/// in a same-directory temp file first, are fsynced, and the temp file is
/// renamed over `path` (itself fsync-barriered via the directory). Readers
/// concurrently opening `path` see the old complete file or the new
/// complete file, never a partial one.
pub fn write_atomic(path: &Path, payload: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(payload)?;
        f.write_all(&footer_for(payload))?;
        f.sync_all()?;
    }
    match fs::rename(&tmp, path) {
        Ok(()) => {}
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
    }
    // Persist the rename itself. Directory fsync is not supported on every
    // platform; failure here cannot un-rename, so it is best-effort.
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// The sibling temp path `write_atomic` stages into.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Reads `path` and returns the payload iff the footer validates: trailing
/// magic present, declared length consistent, CRC-32 exact. Any torn or
/// corrupted file is an error, never a short payload.
pub fn read_verified(path: &Path) -> Result<Vec<u8>, StoreError> {
    let bytes = fs::read(path)?;
    verify(&bytes).map(|payload| payload.to_vec())
}

/// Footer validation over an in-memory image (what [`read_verified`] runs
/// on the file contents). Returns the payload slice.
pub fn verify(bytes: &[u8]) -> Result<&[u8], StoreError> {
    if bytes.len() < FOOTER_LEN {
        return Err(StoreError::TooShort);
    }
    let (body, footer) = bytes.split_at(bytes.len() - FOOTER_LEN);
    if &footer[12..] != FOOTER_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let declared = u64::from_le_bytes(footer[..8].try_into().unwrap());
    if declared != body.len() as u64 {
        return Err(StoreError::LengthMismatch {
            declared,
            actual: body.len() as u64,
        });
    }
    let crc = u32::from_le_bytes(footer[8..12].try_into().unwrap());
    if crc != crc32(body) {
        return Err(StoreError::CrcMismatch);
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fairmove-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn write_then_read_roundtrips() {
        let dir = tempdir("roundtrip");
        let path = dir.join("ckpt.bin");
        let payload: Vec<u8> = (0..=255).collect();
        write_atomic(&path, &payload).unwrap();
        assert_eq!(read_verified(&path).unwrap(), payload);
        // The temp staging file never survives a successful write.
        assert!(!tmp_path(&path).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_replaces_previous_contents_atomically() {
        let dir = tempdir("rewrite");
        let path = dir.join("ckpt.bin");
        write_atomic(&path, b"generation one").unwrap();
        write_atomic(&path, b"generation two, longer than one").unwrap();
        assert_eq!(
            read_verified(&path).unwrap(),
            b"generation two, longer than one"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_at_every_byte_is_rejected() {
        let payload = b"watchdog checkpoint payload";
        let mut file = payload.to_vec();
        file.extend_from_slice(&footer_for(payload));
        // Every proper prefix must fail verification — a torn write can
        // stop after any byte.
        for cut in 0..file.len() {
            assert!(
                verify(&file[..cut]).is_err(),
                "truncated checkpoint of {cut}/{} bytes was accepted",
                file.len()
            );
        }
        assert_eq!(verify(&file).unwrap(), payload);
    }

    #[test]
    fn bitflip_anywhere_is_rejected() {
        let payload = b"bitflip target";
        let mut file = payload.to_vec();
        file.extend_from_slice(&footer_for(payload));
        for i in 0..file.len() {
            let mut flipped = file.clone();
            flipped[i] ^= 0x01;
            assert!(
                verify(&flipped).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn empty_payload_is_valid_but_empty_file_is_not() {
        let dir = tempdir("empty");
        let path = dir.join("ckpt.bin");
        write_atomic(&path, b"").unwrap();
        assert_eq!(read_verified(&path).unwrap(), Vec::<u8>::new());
        fs::write(&path, b"").unwrap();
        assert!(matches!(read_verified(&path), Err(StoreError::TooShort)));
        fs::remove_dir_all(&dir).unwrap();
    }
}
