//! Plain-text model persistence.
//!
//! A production displacement service trains offline and ships frozen
//! weights to the dispatch servers; this module provides a dependency-free
//! textual format for that (one header line, then one line per layer:
//! shape + whitespace-separated weights and biases). Exact round-tripping
//! of `f64` is guaranteed by hex-float encoding.

use crate::matrix::Matrix;
use crate::mlp::{Activation, Mlp};
use std::io::{self, BufRead, Write};

/// Errors from [`load_mlp`].
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural or numeric problem in the file.
    Format(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

fn fmt_err(msg: impl Into<String>) -> LoadError {
    LoadError::Format(msg.into())
}

fn activation_name(a: Activation) -> &'static str {
    match a {
        Activation::Relu => "relu",
        Activation::Tanh => "tanh",
        Activation::Linear => "linear",
    }
}

fn parse_activation(s: &str) -> Result<Activation, LoadError> {
    match s {
        "relu" => Ok(Activation::Relu),
        "tanh" => Ok(Activation::Tanh),
        "linear" => Ok(Activation::Linear),
        other => Err(fmt_err(format!("unknown activation {other:?}"))),
    }
}

/// Serializes `net` (assumed built with uniform hidden activation and one
/// output activation, as [`Mlp::new`] produces) to the text format.
pub fn save_mlp(
    net: &Mlp,
    hidden: Activation,
    output: Activation,
    w: &mut impl Write,
) -> io::Result<()> {
    let shapes = net.layer_shapes();
    writeln!(
        w,
        "fairmove-mlp v1 layers={} hidden={} output={}",
        shapes.len(),
        activation_name(hidden),
        activation_name(output)
    )?;
    let params = net.export_params();
    for ((out_dim, in_dim), (weights, biases)) in shapes.iter().zip(&params) {
        write!(w, "layer {out_dim} {in_dim}")?;
        for v in weights.data() {
            write!(w, " {}", hex_f64(*v))?;
        }
        for v in biases {
            write!(w, " {}", hex_f64(*v))?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Loads a network saved with [`save_mlp`].
pub fn load_mlp(r: &mut impl BufRead) -> Result<Mlp, LoadError> {
    let mut header = String::new();
    r.read_line(&mut header)?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 5 || fields[0] != "fairmove-mlp" || fields[1] != "v1" {
        return Err(fmt_err(format!("bad header: {header:?}")));
    }
    let n_layers: usize = fields[2]
        .strip_prefix("layers=")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| fmt_err("bad layer count"))?;
    let hidden = parse_activation(
        fields[3]
            .strip_prefix("hidden=")
            .ok_or_else(|| fmt_err("missing hidden activation"))?,
    )?;
    let output = parse_activation(
        fields[4]
            .strip_prefix("output=")
            .ok_or_else(|| fmt_err("missing output activation"))?,
    )?;

    let mut sizes = Vec::new();
    let mut params = Vec::new();
    for line in r.lines().take(n_layers) {
        let line = line?;
        let mut it = line.split_whitespace();
        if it.next() != Some("layer") {
            return Err(fmt_err(format!("expected layer line, got {line:?}")));
        }
        let out_dim: usize = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| fmt_err("bad out dim"))?;
        let in_dim: usize = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| fmt_err("bad in dim"))?;
        let values: Vec<f64> = it.map(parse_hex_f64).collect::<Result<_, _>>()?;
        // A checkpoint with NaN/Inf weights is corrupt — a network restored
        // from it would only reproduce the divergence the watchdog is trying
        // to recover from. Reject at parse time with a precise location.
        if let Some(pos) = values.iter().position(|v| !v.is_finite()) {
            return Err(fmt_err(format!(
                "layer {out_dim}x{in_dim}: non-finite parameter {} at index {pos}",
                values[pos]
            )));
        }
        if values.len() != out_dim * in_dim + out_dim {
            return Err(fmt_err(format!(
                "layer {out_dim}x{in_dim}: expected {} values, got {}",
                out_dim * in_dim + out_dim,
                values.len()
            )));
        }
        if sizes.is_empty() {
            sizes.push(in_dim);
        }
        sizes.push(out_dim);
        let (w, b) = values.split_at(out_dim * in_dim);
        params.push((Matrix::from_vec(out_dim, in_dim, w.to_vec()), b.to_vec()));
    }
    if params.len() != n_layers {
        return Err(fmt_err(format!(
            "expected {n_layers} layers, found {}",
            params.len()
        )));
    }

    let mut net = Mlp::new(&sizes, hidden, output, 0);
    net.import_params(&params)
        .map_err(|e| fmt_err(format!("import failed: {e}")))?;
    Ok(net)
}

/// Persists `net` to `path` crash-safely: the text image is written through
/// [`crate::store::write_atomic`], so the file on disk is always a complete
/// snapshot (old or new, never torn) and carries the CRC/length footer
/// [`load_mlp_from_path`] validates before parsing a byte.
pub fn save_mlp_to_path(
    net: &Mlp,
    hidden: Activation,
    output: Activation,
    path: &std::path::Path,
) -> io::Result<()> {
    let mut buf = Vec::new();
    save_mlp(net, hidden, output, &mut buf)?;
    crate::store::write_atomic(path, &buf)
}

/// Loads a network persisted by [`save_mlp_to_path`]. The integrity footer
/// is checked first (torn or bit-flipped files fail cleanly), then the
/// payload goes through the [`load_mlp`] parser and its own structural and
/// finiteness validation.
pub fn load_mlp_from_path(path: &std::path::Path) -> Result<Mlp, LoadError> {
    let payload = crate::store::read_verified(path)
        .map_err(|e| fmt_err(format!("checkpoint rejected: {e}")))?;
    load_mlp(&mut payload.as_slice())
}

/// Exact `f64` encoding via the IEEE-754 bit pattern in hex.
fn hex_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_hex_f64(s: &str) -> Result<f64, LoadError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| fmt_err(format!("bad value {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exactly() {
        let net = Mlp::new(&[4, 8, 3], Activation::Relu, Activation::Linear, 77);
        let mut buf = Vec::new();
        save_mlp(&net, Activation::Relu, Activation::Linear, &mut buf).unwrap();
        let loaded = load_mlp(&mut buf.as_slice()).unwrap();
        let x = vec![0.3, -1.2, 0.0, 2.5];
        assert_eq!(net.forward_one(&x), loaded.forward_one(&x));
        assert_eq!(net.layer_shapes(), loaded.layer_shapes());
    }

    #[test]
    fn round_trips_tanh_networks() {
        let net = Mlp::new(&[2, 5, 5, 1], Activation::Tanh, Activation::Tanh, 3);
        let mut buf = Vec::new();
        save_mlp(&net, Activation::Tanh, Activation::Tanh, &mut buf).unwrap();
        let loaded = load_mlp(&mut buf.as_slice()).unwrap();
        let x = vec![0.5, -0.5];
        assert_eq!(net.forward_one(&x), loaded.forward_one(&x));
    }

    #[test]
    fn rejects_garbage_header() {
        let junk = b"not-a-model\n".to_vec();
        assert!(matches!(
            load_mlp(&mut junk.as_slice()),
            Err(LoadError::Format(_))
        ));
    }

    #[test]
    fn rejects_truncated_layers() {
        let net = Mlp::new(&[3, 4, 2], Activation::Relu, Activation::Linear, 1);
        let mut buf = Vec::new();
        save_mlp(&net, Activation::Relu, Activation::Linear, &mut buf).unwrap();
        // Drop the last line.
        let text = String::from_utf8(buf).unwrap();
        let truncated: String = text.lines().take(2).collect::<Vec<_>>().join("\n");
        assert!(load_mlp(&mut truncated.as_bytes()).is_err());
    }

    /// Saves a small net, then replaces the first weight value with the
    /// given raw hex payload.
    fn corrupt_first_weight(payload: &str) -> String {
        let net = Mlp::new(&[2, 3, 1], Activation::Relu, Activation::Linear, 9);
        let mut buf = Vec::new();
        save_mlp(&net, Activation::Relu, Activation::Linear, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let mut fields: Vec<String> = lines[1].split_whitespace().map(String::from).collect();
        fields[3] = payload.to_string(); // first weight after "layer o i"
        lines[1] = fields.join(" ");
        lines.join("\n") + "\n"
    }

    #[test]
    fn rejects_nan_weights() {
        let text = corrupt_first_weight("7ff8000000000000"); // quiet NaN
        let err = load_mlp(&mut text.as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("non-finite"), "unexpected error: {msg}");
    }

    #[test]
    fn rejects_infinite_weights() {
        for payload in ["7ff0000000000000", "fff0000000000000"] {
            let text = corrupt_first_weight(payload); // ±Inf
            let err = load_mlp(&mut text.as_bytes()).unwrap_err();
            assert!(
                matches!(err, LoadError::Format(_)),
                "expected format error, got {err}"
            );
        }
    }

    #[test]
    fn hex_encoding_is_exact_for_extremes() {
        for v in [0.0, -0.0, 1.5e-308, f64::MAX, -std::f64::consts::PI] {
            let s = hex_f64(v);
            let back = parse_hex_f64(&s).unwrap();
            assert_eq!(v.to_bits(), back.to_bits());
        }
    }
}
