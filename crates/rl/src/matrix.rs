//! Row-major dense matrices.
//!
//! Sized for this workload: layer widths of tens to a few hundred, batch
//! sizes in the low thousands. Naive triple-loop matmul with the inner loop
//! over contiguous memory is plenty at that scale and keeps the code
//! auditable.

use serde::{Deserialize, Serialize};

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} != {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// A 1×n row vector.
    pub fn row_vector(data: Vec<f64>) -> Self {
        let cols = data.len();
        Matrix {
            rows: 1,
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` (`m×k · k×n → m×n`).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let other_row = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(other_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` (`m×k · n×k → m×n`), without materializing the
    /// transpose. This is the hot orientation in backprop.
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_tb {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// `selfᵀ · other` (`k×m ᵀ· k×n → m×n`).
    pub fn transpose_a_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_ta ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Adds `row` (length = cols) to every row, in place.
    pub fn add_row_broadcast(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "broadcast width mismatch");
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(row) {
                *v += b;
            }
        }
    }

    /// Element-wise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise product (Hadamard), in place.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn hadamard_inplace(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// Column sums (length = cols).
    pub fn column_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Scales all elements in place.
    pub fn scale_inplace(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn m(rows: usize, cols: usize, v: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = m(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_transpose_b_equals_explicit() {
        let a = m(2, 3, &[1.0, -2.0, 3.0, 0.5, 4.0, -1.0]);
        let b = m(
            4,
            3,
            &[2.0, 1.0, 0.0, -1.0, 3.0, 2.0, 0.0, 0.0, 1.0, 5.0, -2.0, 0.5],
        );
        let fast = a.matmul_transpose_b(&b);
        let explicit = a.matmul(&b.transpose());
        assert_eq!(fast, explicit);
    }

    #[test]
    fn transpose_a_matmul_equals_explicit() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 4, &(0..12).map(f64::from).collect::<Vec<_>>());
        let fast = a.transpose_a_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        assert_eq!(fast, explicit);
    }

    #[test]
    fn transpose_round_trips() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_row_broadcast_adds_to_all_rows() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(a.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn column_sums_known() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.column_sums(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn hadamard_and_map() {
        let mut a = m(1, 3, &[1.0, -2.0, 3.0]);
        let b = m(1, 3, &[2.0, 2.0, 2.0]);
        a.hadamard_inplace(&b);
        assert_eq!(a.data(), &[2.0, -4.0, 6.0]);
        a.map_inplace(f64::abs);
        assert_eq!(a.data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn frobenius_norm_known() {
        let a = m(1, 2, &[3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn row_vector_shape() {
        let v = Matrix::row_vector(vec![1.0, 2.0]);
        assert_eq!((v.rows(), v.cols()), (1, 2));
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    proptest! {
        #[test]
        fn matmul_is_associative_with_vectors(
            a in proptest::collection::vec(-5.0..5.0f64, 6),
            b in proptest::collection::vec(-5.0..5.0f64, 6),
            c in proptest::collection::vec(-5.0..5.0f64, 4),
        ) {
            let ma = Matrix::from_vec(2, 3, a);
            let mb = Matrix::from_vec(3, 2, b);
            let mc = Matrix::from_vec(2, 2, c);
            let left = ma.matmul(&mb).matmul(&mc);
            let right = ma.matmul(&mb.matmul(&mc));
            for (l, r) in left.data().iter().zip(right.data()) {
                prop_assert!((l - r).abs() < 1e-9);
            }
        }

        #[test]
        fn transpose_preserves_norm(v in proptest::collection::vec(-10.0..10.0f64, 12)) {
            let a = Matrix::from_vec(3, 4, v);
            prop_assert!((a.frobenius_norm() - a.transpose().frobenius_norm()).abs() < 1e-12);
        }
    }
}
