//! Row-major dense matrices.
//!
//! Sized for this workload: layer widths of tens to a few hundred, batch
//! sizes in the low thousands. The three matmul orientations are
//! row-partitioned across threads (via [`fairmove_parallel`]) and blocked
//! over the shared operand for cache reuse, but every output element is
//! still accumulated in ascending-`k` order by exactly one thread — so the
//! result is **bit-identical** for every thread count, not merely close.
//! Small products stay on the caller's stack: spawning scoped threads costs
//! more than a sub-millisecond multiply, so the auto entry points only fan
//! out above [`PAR_MIN_FLOPS`] multiply-adds.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU8, Ordering};

/// Which matmul kernel implementation the auto entry points run.
///
/// Both backends accumulate every output element from `+0.0` in ascending-`k`
/// order with exactly one chain per element, so they are **bit-identical** on
/// finite inputs — `Scalar` is the retained-verbatim oracle the testkit's
/// `kernel-differential` oracle replays every scenario against, `Vectorized`
/// is the register-tiled production default. Selection is process-global
/// (see [`set_kernel_backend`]) with per-call overrides for tests and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// The original broadcast-accumulate loops, kept byte-for-byte as the
    /// reference implementation.
    Scalar,
    /// Eight output columns per register tile (f32x8-style manual unroll on
    /// `f64` lanes), fma-friendly accumulation. Same summation order per
    /// element, so bitwise-equal to [`KernelBackend::Scalar`].
    Vectorized,
}

/// `0` = not yet resolved, `1` = scalar, `2` = vectorized.
static KERNEL_BACKEND: AtomicU8 = AtomicU8::new(0);

/// Selects the process-global kernel backend.
pub fn set_kernel_backend(backend: KernelBackend) {
    let code = match backend {
        KernelBackend::Scalar => 1,
        KernelBackend::Vectorized => 2,
    };
    KERNEL_BACKEND.store(code, Ordering::Relaxed);
}

/// The process-global kernel backend. Resolved on first use from
/// `FAIRMOVE_KERNEL` (`scalar` | `vectorized`); defaults to
/// [`KernelBackend::Vectorized`] — safe because the backends are
/// bit-identical, so no golden or baseline moves with the default.
pub fn kernel_backend() -> KernelBackend {
    match KERNEL_BACKEND.load(Ordering::Relaxed) {
        1 => KernelBackend::Scalar,
        2 => KernelBackend::Vectorized,
        _ => {
            let backend = match std::env::var("FAIRMOVE_KERNEL").as_deref() {
                Ok("scalar") => KernelBackend::Scalar,
                _ => KernelBackend::Vectorized,
            };
            set_kernel_backend(backend);
            backend
        }
    }
}

/// Minimum multiply-add count before the auto entry points (`matmul` & co.)
/// fan rows out across threads. Below this, thread spawn/join overhead
/// (tens of microseconds per worker) exceeds the arithmetic saved.
const PAR_MIN_FLOPS: usize = 1 << 22;

/// Rows of the shared right-hand operand processed per cache block. 64 rows
/// of up to a few hundred `f64` columns keep the block within L1/L2 while
/// it is reused across every output row of a chunk.
const BLOCK_K: usize = 64;

/// Output columns walked at once in the `matmul_transpose_b` kernel. Eight
/// independent accumulator chains hide the FP-add latency (~4 cycles) that
/// a single dot-product chain is bound by; per chain the summation order is
/// unchanged, so the unroll is invisible in the result bits.
const TB_UNROLL: usize = 8;

/// Row threshold above which `matmul_transpose_b*` first copies `other`
/// into a k-major scratch and runs the broadcast-accumulate kernel (the
/// same inner loop as [`Matrix::matmul`]): one element of the left operand
/// is broadcast against a *contiguous* scratch row, which the compiler
/// vectorizes, and an exactly-zero left element (common with ReLU
/// activations) skips its whole row of multiply-adds. Below the threshold
/// the O(k·n) transposition would cost as much as the product itself, so
/// small batches keep the dot-product path.
///
/// Both paths accumulate every output element from `+0.0` in ascending-`k`
/// order with one chain per element, and for finite operands skipping an
/// `a == 0.0` term only drops a `±0.0` addend, which can never flip any
/// partial sum that started at `+0.0` — so the two paths (and every thread
/// count) produce bit-identical results, as `transpose_b_paths_agree_bitwise`
/// pins.
const TB_TRANSPOSE_MIN_ROWS: usize = 4;

/// Output columns held in one register tile by the vectorized backend. Eight
/// `f64` lanes span two AVX2 vectors (or four NEON ones) and leave headroom
/// for the compiler to keep the whole tile in registers across the `k` loop.
const VEC_LANES: usize = 8;

/// The vectorized broadcast-accumulate kernel for one `k` block: walks the
/// output row in [`VEC_LANES`]-wide tiles, keeping each tile's partial sums
/// in registers across the entire block instead of streaming `out_row`
/// through memory once per `k` — the fma-friendly shape the scalar loop
/// denies the compiler. Per output element the accumulation order over `k`
/// is *unchanged* (ascending, one chain per element, zero-skip included), so
/// the result is bit-identical to the scalar kernel on finite inputs; the
/// tile only changes where a partial sum lives, never the order it is summed.
///
/// `a_block` holds the left-operand values for this block's `k` range and
/// `b_slab` the matching `(kend - kb) × n_cols` rows of the k-major right
/// operand.
#[inline]
fn axpy_block_vectorized(out_row: &mut [f64], a_block: &[f64], b_slab: &[f64], n_cols: usize) {
    let mut j = 0;
    while j + VEC_LANES <= n_cols {
        let mut acc = [0.0f64; VEC_LANES];
        acc.copy_from_slice(&out_row[j..j + VEC_LANES]);
        for (k, &a) in a_block.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let b = &b_slab[k * n_cols + j..k * n_cols + j + VEC_LANES];
            for (o, &bv) in acc.iter_mut().zip(b) {
                *o += a * bv;
            }
        }
        out_row[j..j + VEC_LANES].copy_from_slice(&acc);
        j += VEC_LANES;
    }
    if j < n_cols {
        // Remainder columns (n_cols % 8): the scalar shape, still ascending-k.
        for (k, &a) in a_block.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let b_row = &b_slab[k * n_cols..(k + 1) * n_cols];
            for (o, &bv) in out_row[j..].iter_mut().zip(&b_row[j..]) {
                *o += a * bv;
            }
        }
    }
}

thread_local! {
    /// Reusable k-major scratch for the transposed-operand fast path. One
    /// buffer per thread: it grows to the largest `k × n` operand seen and
    /// is reused thereafter, so steady-state inference stays allocation-free.
    static TB_SCRATCH: std::cell::RefCell<Vec<f64>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Picks the worker count for an auto entry point: all configured threads
/// when the product is large enough to amortize spawning, else serial.
fn auto_threads(flops: usize) -> usize {
    if flops >= PAR_MIN_FLOPS {
        fairmove_parallel::thread_count()
    } else {
        1
    }
}

/// Rows per parallel chunk: a few chunks per worker for load balancing
/// without fragmenting the cache blocks.
fn chunk_rows(rows: usize, threads: usize) -> usize {
    rows.div_ceil(threads.max(1) * 4).max(1)
}

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} != {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// A 1×n row vector.
    pub fn row_vector(data: Vec<f64>) -> Self {
        let cols = data.len();
        Matrix {
            rows: 1,
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshapes to `rows × cols` reusing the backing storage, zero-filling
    /// every element. After the backing `Vec` has grown to its high-water
    /// capacity this never allocates — the resize discipline behind the
    /// `_into` matmul variants and the pooled [`crate::MlpWorkspace`].
    pub fn resize_in_place(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// `self · other` (`m×k · k×n → m×n`).
    ///
    /// Fans rows across threads above [`PAR_MIN_FLOPS`]; bit-identical to
    /// the serial product either way.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.matmul_threads(other, auto_threads(self.rows * self.cols * other.cols))
    }

    /// [`Self::matmul`] with an explicit worker count (benches and the
    /// determinism tests pin 1/2/4).
    pub fn matmul_threads(&self, other: &Matrix, threads: usize) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_threads_into(other, threads, &mut out);
        out
    }

    /// [`Self::matmul_threads`] with an explicit [`KernelBackend`].
    pub fn matmul_backend_threads(
        &self,
        other: &Matrix,
        backend: KernelBackend,
        threads: usize,
    ) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_backend_threads_into(other, backend, threads, &mut out);
        out
    }

    /// [`Self::matmul`] writing into a caller-owned output matrix, which is
    /// resized in place (no allocation once `out` has reached its
    /// high-water capacity). Same kernel as the allocating entry points, so
    /// the result is bit-identical to them at every thread count.
    ///
    /// Each output row is owned by exactly one thread and accumulated in
    /// ascending-`k` order (cache blocks walk `k` in ascending runs), so
    /// the result is bit-identical for every `threads` value.
    pub fn matmul_threads_into(&self, other: &Matrix, threads: usize, out: &mut Matrix) {
        self.matmul_backend_threads_into(other, kernel_backend(), threads, out);
    }

    /// [`Self::matmul_threads_into`] with an explicit [`KernelBackend`]
    /// (the kernel-differential oracle and the benches pin both).
    pub fn matmul_backend_threads_into(
        &self,
        other: &Matrix,
        backend: KernelBackend,
        threads: usize,
        out: &mut Matrix,
    ) {
        assert_eq!(
            self.cols, other.rows,
            "matmul {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize_in_place(self.rows, other.cols);
        if out.data.is_empty() || self.cols == 0 {
            return;
        }
        let n_cols = other.cols;
        let rows_per_chunk = chunk_rows(self.rows, threads);
        fairmove_parallel::par_chunks_mut_threads(
            threads,
            &mut out.data,
            rows_per_chunk * n_cols,
            |chunk_idx, out_chunk| {
                let row0 = chunk_idx * rows_per_chunk;
                for kb in (0..self.cols).step_by(BLOCK_K) {
                    let kend = (kb + BLOCK_K).min(self.cols);
                    for (local_i, out_row) in out_chunk.chunks_mut(n_cols).enumerate() {
                        let i = row0 + local_i;
                        match backend {
                            KernelBackend::Scalar => {
                                for k in kb..kend {
                                    let a = self.data[i * self.cols + k];
                                    if a == 0.0 {
                                        continue;
                                    }
                                    let other_row = &other.data[k * n_cols..(k + 1) * n_cols];
                                    for (o, &b) in out_row.iter_mut().zip(other_row) {
                                        *o += a * b;
                                    }
                                }
                            }
                            KernelBackend::Vectorized => {
                                let a_block = &self.data[i * self.cols + kb..i * self.cols + kend];
                                let b_slab = &other.data[kb * n_cols..kend * n_cols];
                                axpy_block_vectorized(out_row, a_block, b_slab, n_cols);
                            }
                        }
                    }
                }
            },
        );
    }

    /// `self · otherᵀ` (`m×k · n×k → m×n`), without materializing the
    /// transpose. This is the hot orientation in backprop *and* the only
    /// orientation in the inference forward pass.
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        self.matmul_transpose_b_threads(other, auto_threads(self.rows * self.cols * other.rows))
    }

    /// [`Self::matmul_transpose_b`] with an explicit worker count.
    pub fn matmul_transpose_b_threads(&self, other: &Matrix, threads: usize) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_transpose_b_threads_into(other, threads, &mut out);
        out
    }

    /// [`Self::matmul_transpose_b_threads`] with an explicit
    /// [`KernelBackend`].
    pub fn matmul_transpose_b_backend_threads(
        &self,
        other: &Matrix,
        backend: KernelBackend,
        threads: usize,
    ) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_transpose_b_backend_threads_into(other, backend, threads, &mut out);
        out
    }

    /// [`Self::matmul_transpose_b`] with the auto worker count, writing into
    /// a caller-owned output matrix (no allocation after warmup).
    pub fn matmul_transpose_b_into(&self, other: &Matrix, out: &mut Matrix) {
        self.matmul_transpose_b_threads_into(
            other,
            auto_threads(self.rows * self.cols * other.rows),
            out,
        );
    }

    /// Backing-store capacity in bytes (telemetry high-water mirrors).
    #[inline]
    pub fn capacity_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f64>()
    }

    /// [`Self::matmul_transpose_b`] writing into a caller-owned output
    /// matrix (resized in place, no allocation after warmup).
    ///
    /// Every output element is a single left-to-right dot product computed
    /// by one thread. The kernel walks [`TB_UNROLL`] output columns at once
    /// — independent accumulator chains that break the FP-add latency
    /// dependency — but each chain still sums its own dot product in
    /// ascending-`k` order, so the result is bit-identical to the naive
    /// triple loop for every `threads` value and every unroll width.
    pub fn matmul_transpose_b_threads_into(
        &self,
        other: &Matrix,
        threads: usize,
        out: &mut Matrix,
    ) {
        self.matmul_transpose_b_backend_threads_into(other, kernel_backend(), threads, out);
    }

    /// [`Self::matmul_transpose_b_threads_into`] with an explicit
    /// [`KernelBackend`].
    pub fn matmul_transpose_b_backend_threads_into(
        &self,
        other: &Matrix,
        backend: KernelBackend,
        threads: usize,
        out: &mut Matrix,
    ) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_tb {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize_in_place(self.rows, other.rows);
        if out.data.is_empty() || self.cols == 0 {
            // cols == 0 means every dot product is empty: the zeroed output
            // is already the answer, and the fast path's `chunks_exact(0)`
            // transpose would panic (found by the edge-shape property test).
            return;
        }
        let n_cols = other.rows;
        let width = self.cols;
        let rows_per_chunk = chunk_rows(self.rows, threads);
        if self.rows >= TB_TRANSPOSE_MIN_ROWS {
            // The fast path's zero-skip silently drops `0.0 * b` terms —
            // harmless for finite `b` (a `±0.0` addend can't flip a partial
            // sum started at `+0.0`) but it turns `0.0 * NaN`/`0.0 * Inf`
            // into `0.0`, so on non-finite inputs the paths would disagree.
            // The inference stack guards with `params_finite`; this assert
            // formalizes the contract at the kernel boundary.
            debug_assert!(
                self.data.iter().all(|v| v.is_finite()) && other.data.iter().all(|v| v.is_finite()),
                "matmul_transpose_b fast path requires finite inputs \
                 (zero-skip drops 0*non-finite terms)"
            );
            TB_SCRATCH.with(|cell| {
                let mut scratch = cell.borrow_mut();
                scratch.clear();
                scratch.resize(width * n_cols, 0.0);
                for (j, other_row) in other.data.chunks_exact(width).enumerate() {
                    for (k, &v) in other_row.iter().enumerate() {
                        scratch[k * n_cols + j] = v;
                    }
                }
                let bt: &[f64] = &scratch;
                fairmove_parallel::par_chunks_mut_threads(
                    threads,
                    &mut out.data,
                    rows_per_chunk * n_cols,
                    |chunk_idx, out_chunk| {
                        let row0 = chunk_idx * rows_per_chunk;
                        for kb in (0..width).step_by(BLOCK_K) {
                            let kend = (kb + BLOCK_K).min(width);
                            for (local_i, out_row) in out_chunk.chunks_mut(n_cols).enumerate() {
                                let a_row = self.row(row0 + local_i);
                                match backend {
                                    KernelBackend::Scalar => {
                                        for (k, &a) in a_row[kb..kend].iter().enumerate() {
                                            if a == 0.0 {
                                                continue;
                                            }
                                            let b_row =
                                                &bt[(kb + k) * n_cols..(kb + k + 1) * n_cols];
                                            for (o, &b) in out_row.iter_mut().zip(b_row) {
                                                *o += a * b;
                                            }
                                        }
                                    }
                                    KernelBackend::Vectorized => {
                                        let b_slab = &bt[kb * n_cols..kend * n_cols];
                                        axpy_block_vectorized(
                                            out_row,
                                            &a_row[kb..kend],
                                            b_slab,
                                            n_cols,
                                        );
                                    }
                                }
                            }
                        }
                    },
                );
            });
            return;
        }
        fairmove_parallel::par_chunks_mut_threads(
            threads,
            &mut out.data,
            rows_per_chunk * n_cols,
            |chunk_idx, out_chunk| {
                let row0 = chunk_idx * rows_per_chunk;
                // Small-batch dot-product fallback, shared by both backends:
                // it is already TB_UNROLL-wide and transposing here would
                // cost as much as the product (see TB_TRANSPOSE_MIN_ROWS).
                // Block over `other`'s rows so a block stays cached while
                // it is dotted against every row of this chunk.
                for jb in (0..n_cols).step_by(BLOCK_K) {
                    let jend = (jb + BLOCK_K).min(n_cols);
                    for (local_i, out_row) in out_chunk.chunks_mut(n_cols).enumerate() {
                        let a_row = self.row(row0 + local_i);
                        let mut j = jb;
                        while j + TB_UNROLL <= jend {
                            let mut acc = [0.0f64; TB_UNROLL];
                            let mut b_rows = [&other.data[..0]; TB_UNROLL];
                            for (n, b_row) in b_rows.iter_mut().enumerate() {
                                *b_row = &other.data[(j + n) * width..(j + n + 1) * width];
                            }
                            for (k, &a) in a_row.iter().enumerate() {
                                for n in 0..TB_UNROLL {
                                    acc[n] += a * b_rows[n][k];
                                }
                            }
                            out_row[j..j + TB_UNROLL].copy_from_slice(&acc);
                            j += TB_UNROLL;
                        }
                        for (jj, o) in out_row[j..jend].iter_mut().enumerate() {
                            let b_row = other.row(j + jj);
                            let mut acc = 0.0;
                            for (&a, &b) in a_row.iter().zip(b_row) {
                                acc += a * b;
                            }
                            *o = acc;
                        }
                    }
                }
            },
        );
    }

    /// `selfᵀ · other` (`k×m ᵀ· k×n → m×n`).
    pub fn transpose_a_matmul(&self, other: &Matrix) -> Matrix {
        self.transpose_a_matmul_threads(other, auto_threads(self.rows * self.cols * other.cols))
    }

    /// [`Self::transpose_a_matmul`] with an explicit worker count.
    pub fn transpose_a_matmul_threads(&self, other: &Matrix, threads: usize) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.transpose_a_matmul_threads_into(other, threads, &mut out);
        out
    }

    /// [`Self::transpose_a_matmul`] writing into a caller-owned output
    /// matrix (resized in place, no allocation after warmup).
    ///
    /// Output rows (columns of `self`) are partitioned across threads; each
    /// element accumulates over `k` in ascending order exactly as the
    /// serial loop does, so the result is bit-identical for every
    /// `threads` value.
    pub fn transpose_a_matmul_threads_into(
        &self,
        other: &Matrix,
        threads: usize,
        out: &mut Matrix,
    ) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_ta ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize_in_place(self.cols, other.cols);
        if out.data.is_empty() || self.rows == 0 {
            return;
        }
        let n_cols = other.cols;
        let rows_per_chunk = chunk_rows(self.cols, threads);
        fairmove_parallel::par_chunks_mut_threads(
            threads,
            &mut out.data,
            rows_per_chunk * n_cols,
            |chunk_idx, out_chunk| {
                let i0 = chunk_idx * rows_per_chunk;
                for kb in (0..self.rows).step_by(BLOCK_K) {
                    let kend = (kb + BLOCK_K).min(self.rows);
                    for (local_i, out_row) in out_chunk.chunks_mut(n_cols).enumerate() {
                        let i = i0 + local_i;
                        for k in kb..kend {
                            let a = self.data[k * self.cols + i];
                            if a == 0.0 {
                                continue;
                            }
                            let b_row = &other.data[k * n_cols..(k + 1) * n_cols];
                            for (o, &b) in out_row.iter_mut().zip(b_row) {
                                *o += a * b;
                            }
                        }
                    }
                }
            },
        );
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Adds `row` (length = cols) to every row, in place.
    pub fn add_row_broadcast(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "broadcast width mismatch");
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(row) {
                *v += b;
            }
        }
    }

    /// Element-wise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise product (Hadamard), in place.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn hadamard_inplace(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
    }

    /// Column sums (length = cols).
    pub fn column_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Scales all elements in place.
    pub fn scale_inplace(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn m(rows: usize, cols: usize, v: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = m(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_transpose_b_equals_explicit() {
        let a = m(2, 3, &[1.0, -2.0, 3.0, 0.5, 4.0, -1.0]);
        let b = m(
            4,
            3,
            &[2.0, 1.0, 0.0, -1.0, 3.0, 2.0, 0.0, 0.0, 1.0, 5.0, -2.0, 0.5],
        );
        let fast = a.matmul_transpose_b(&b);
        let explicit = a.matmul(&b.transpose());
        assert_eq!(fast, explicit);
    }

    #[test]
    fn transpose_a_matmul_equals_explicit() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 4, &(0..12).map(f64::from).collect::<Vec<_>>());
        let fast = a.transpose_a_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        assert_eq!(fast, explicit);
    }

    #[test]
    fn transpose_round_trips() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_row_broadcast_adds_to_all_rows() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(a.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn column_sums_known() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.column_sums(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn hadamard_and_map() {
        let mut a = m(1, 3, &[1.0, -2.0, 3.0]);
        let b = m(1, 3, &[2.0, 2.0, 2.0]);
        a.hadamard_inplace(&b);
        assert_eq!(a.data(), &[2.0, -4.0, 6.0]);
        a.map_inplace(f64::abs);
        assert_eq!(a.data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn frobenius_norm_known() {
        let a = m(1, 2, &[3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn row_vector_shape() {
        let v = Matrix::row_vector(vec![1.0, 2.0]);
        assert_eq!((v.rows(), v.cols()), (1, 2));
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    /// The pre-parallel triple loop: `i,k,j` with the zero skip, `k`
    /// strictly ascending per element. The blocked/threaded kernels must
    /// reproduce this bit-for-bit.
    fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                let v = a.get(i, k);
                if v == 0.0 {
                    continue;
                }
                for j in 0..b.cols() {
                    let cur = out.get(i, j);
                    out.set(i, j, cur + v * b.get(k, j));
                }
            }
        }
        out
    }

    fn reference_matmul_tb(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(j, k);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    fn reference_matmul_ta(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.cols(), b.cols());
        for k in 0..a.rows() {
            for i in 0..a.cols() {
                let v = a.get(k, i);
                if v == 0.0 {
                    continue;
                }
                for j in 0..b.cols() {
                    let cur = out.get(i, j);
                    out.set(i, j, cur + v * b.get(k, j));
                }
            }
        }
        out
    }

    /// Deterministic pseudo-random fill (no RNG dependency): awkward values
    /// whose sums are order-sensitive in the last ulp, plus ~10% zeros to
    /// exercise the sparsity skip.
    fn scrambled(rows: usize, cols: usize, salt: u64) -> Matrix {
        let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let data: Vec<f64> = (0..rows * cols)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (state >> 33) as u32;
                if u % 10 == 0 {
                    0.0
                } else {
                    (u as f64 / u32::MAX as f64 - 0.5) * 3.7
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    #[test]
    fn matmul_bit_identical_across_thread_counts() {
        // 70 > BLOCK_K exercises multi-block accumulation; odd row counts
        // exercise the short final chunk.
        let a = scrambled(37, 70, 1);
        let b = scrambled(70, 29, 2);
        let reference = reference_matmul(&a, &b);
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                a.matmul_threads(&b, threads),
                reference,
                "threads={threads}"
            );
        }
        assert_eq!(a.matmul(&b), reference);
    }

    #[test]
    fn matmul_transpose_b_bit_identical_across_thread_counts() {
        let a = scrambled(33, 70, 3);
        let b = scrambled(81, 70, 4);
        let reference = reference_matmul_tb(&a, &b);
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                a.matmul_transpose_b_threads(&b, threads),
                reference,
                "threads={threads}"
            );
        }
        assert_eq!(a.matmul_transpose_b(&b), reference);
    }

    #[test]
    fn transpose_b_paths_agree_bitwise() {
        // ReLU-like left operand: clamp negatives to zero so roughly half
        // the activations are exactly 0.0, exercising the fast path's
        // zero-skip against full accumulation.
        let mut a = scrambled(37, 70, 11);
        for v in a.data.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        let b = scrambled(29, 70, 12);
        let reference = reference_matmul_tb(&a, &b);
        // 37 rows takes the transposed-scratch kernel at every thread count.
        for threads in [1, 2, 4] {
            assert_eq!(
                a.matmul_transpose_b_threads(&b, threads),
                reference,
                "threads={threads}"
            );
        }
        // Row i of the product depends only on row i of `a`, and a one-row
        // left operand takes the dot-product fallback: compare the two
        // kernels bitwise, row by row.
        for i in 0..a.rows() {
            let row = Matrix::from_vec(1, a.cols(), a.row(i).to_vec());
            let fallback = row.matmul_transpose_b_threads(&b, 1);
            assert_eq!(
                fallback.data(),
                &reference.data()[i * b.rows()..(i + 1) * b.rows()],
                "row {i}"
            );
        }
        // Shapes straddling the threshold agree with the naive loop too.
        for rows in [TB_TRANSPOSE_MIN_ROWS - 1, TB_TRANSPOSE_MIN_ROWS] {
            let small_a = scrambled(rows, 24, 13);
            let small_b = scrambled(7, 24, 14);
            assert_eq!(
                small_a.matmul_transpose_b_threads(&small_b, 2),
                reference_matmul_tb(&small_a, &small_b),
                "rows={rows}"
            );
        }
    }

    #[test]
    fn transpose_a_matmul_bit_identical_across_thread_counts() {
        let a = scrambled(70, 37, 5);
        let b = scrambled(70, 23, 6);
        let reference = reference_matmul_ta(&a, &b);
        for threads in [1, 2, 4, 8] {
            assert_eq!(
                a.transpose_a_matmul_threads(&b, threads),
                reference,
                "threads={threads}"
            );
        }
        assert_eq!(a.transpose_a_matmul(&b), reference);
    }

    #[test]
    fn threaded_matmul_handles_degenerate_shapes() {
        let empty_rows = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        assert_eq!(empty_rows.matmul_threads(&b, 4), Matrix::zeros(0, 3));
        let a = Matrix::zeros(3, 0);
        let b0 = Matrix::zeros(0, 4);
        assert_eq!(a.matmul_threads(&b0, 4), Matrix::zeros(3, 4));
        let c = Matrix::zeros(4, 0);
        assert_eq!(a.matmul_transpose_b_threads(&c, 4), Matrix::zeros(3, 4));
        assert_eq!(
            Matrix::zeros(0, 3).transpose_a_matmul_threads(&Matrix::zeros(0, 2), 4),
            Matrix::zeros(3, 2)
        );
    }

    #[test]
    fn resize_in_place_zeroes_and_keeps_capacity() {
        let mut a = scrambled(8, 8, 9);
        let ptr = a.data().as_ptr();
        a.resize_in_place(4, 4);
        assert_eq!((a.rows(), a.cols()), (4, 4));
        assert!(a.data().iter().all(|&v| v == 0.0));
        assert_eq!(a.data().as_ptr(), ptr, "shrinking must reuse the buffer");
    }

    #[test]
    fn into_variants_match_allocating_entry_points_and_reuse_storage() {
        let a = scrambled(13, 70, 7);
        let b = scrambled(70, 11, 8);
        let bt = b.transpose();
        // Seed the output with stale garbage bigger than any result below:
        // the `_into` kernels must fully overwrite it.
        let mut out = scrambled(40, 40, 10);
        let ptr = out.data().as_ptr();
        a.matmul_threads_into(&b, 2, &mut out);
        assert_eq!(out, a.matmul_threads(&b, 2));
        a.matmul_transpose_b_threads_into(&bt, 2, &mut out);
        assert_eq!(out, a.matmul_transpose_b_threads(&bt, 2));
        a.transpose_a_matmul_threads_into(&scrambled(13, 9, 11), 2, &mut out);
        assert_eq!(out, a.transpose_a_matmul_threads(&scrambled(13, 9, 11), 2));
        assert_eq!(out.data().as_ptr(), ptr, "no reallocation within capacity");
    }

    #[test]
    fn tb_unroll_edges_match_reference() {
        // Column counts straddling the unroll width (and the BLOCK_K edge)
        // exercise both the unrolled body and the scalar tail.
        for n_out in [1, 7, 8, 9, 15, 16, 17, 63, 64, 65] {
            let a = scrambled(5, 33, n_out as u64);
            let b = scrambled(n_out, 33, n_out as u64 + 100);
            assert_eq!(
                a.matmul_transpose_b_threads(&b, 1),
                reference_matmul_tb(&a, &b),
                "n_out={n_out}"
            );
        }
    }

    #[test]
    fn vectorized_backend_is_bitwise_equal_to_scalar() {
        // Shapes straddling BLOCK_K and VEC_LANES boundaries, with the
        // scrambled fill whose sums are order-sensitive in the last ulp:
        // any reordering in the vectorized tile would show up here.
        for (m_rows, k, n) in [
            (1, 5, 1),
            (5, 33, 7),
            (5, 33, 8),
            (5, 33, 9),
            (37, 70, 29),
            (16, 64, 65),
            (9, 128, 16),
        ] {
            let a = scrambled(m_rows, k, (m_rows * k * n) as u64);
            let b = scrambled(k, n, (m_rows + k + n) as u64);
            let bt = b.transpose();
            for threads in [1, 2, 4] {
                let scalar = a.matmul_backend_threads(&b, KernelBackend::Scalar, threads);
                let vectorized = a.matmul_backend_threads(&b, KernelBackend::Vectorized, threads);
                assert_eq!(scalar, vectorized, "matmul {m_rows}x{k}x{n} t={threads}");
                assert_eq!(scalar, reference_matmul(&a, &b));
                let scalar_tb =
                    a.matmul_transpose_b_backend_threads(&bt, KernelBackend::Scalar, threads);
                let vectorized_tb =
                    a.matmul_transpose_b_backend_threads(&bt, KernelBackend::Vectorized, threads);
                assert_eq!(
                    scalar_tb, vectorized_tb,
                    "matmul_tb {m_rows}x{k}x{n} t={threads}"
                );
                assert_eq!(scalar_tb, reference_matmul_tb(&a, &bt));
            }
        }
    }

    #[test]
    fn backend_selection_is_env_and_setter_driven() {
        // Both backends are bitwise-equal, so flipping the global mid-test
        // is observable only through the getter.
        let before = kernel_backend();
        set_kernel_backend(KernelBackend::Scalar);
        assert_eq!(kernel_backend(), KernelBackend::Scalar);
        set_kernel_backend(KernelBackend::Vectorized);
        assert_eq!(kernel_backend(), KernelBackend::Vectorized);
        set_kernel_backend(before);
    }

    #[test]
    fn edge_shapes_agree_across_backends() {
        // 0-row / 0-col / 1×N and widths around the 8-lane tile: the
        // remainder loop is where kernels rot.
        for backend in [KernelBackend::Scalar, KernelBackend::Vectorized] {
            for &(m_rows, k, n) in &[
                (0usize, 5usize, 3usize),
                (3, 0, 4),
                (3, 5, 0),
                (1, 24, 7),
                (1, 24, 8),
                (1, 24, 9),
                (2, 7, 15),
                (4, 9, 17),
            ] {
                let a = scrambled(m_rows, k, 21);
                let b = scrambled(k, n, 22);
                assert_eq!(
                    a.matmul_backend_threads(&b, backend, 3),
                    reference_matmul(&a, &b),
                    "{backend:?} {m_rows}x{k}x{n}"
                );
                let bt = scrambled(n, k, 23);
                assert_eq!(
                    a.matmul_transpose_b_backend_threads(&bt, backend, 3),
                    reference_matmul_tb(&a, &bt),
                    "tb {backend:?} {m_rows}x{k}x{n}"
                );
            }
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "finite inputs")]
    fn transpose_b_fast_path_rejects_nan_in_debug() {
        // ≥ TB_TRANSPOSE_MIN_ROWS rows takes the scratch fast path, whose
        // zero-skip would silently turn 0.0 * NaN into 0.0.
        let mut a = scrambled(4, 8, 31);
        a.set(2, 3, f64::NAN);
        let b = scrambled(5, 8, 32);
        let _ = a.matmul_transpose_b_threads(&b, 1);
    }

    #[test]
    fn subnormal_inputs_stay_bitwise_equal_across_backends() {
        // Subnormals are finite, so the fast-path contract holds; they flush
        // differently under unsafe-fp flags, so pin bitwise agreement here.
        let mut a = scrambled(5, 24, 41);
        let mut b = scrambled(9, 24, 42);
        for (i, v) in a.data.iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = f64::MIN_POSITIVE / ((i + 2) as f64);
            }
        }
        for (i, v) in b.data.iter_mut().enumerate() {
            if i % 4 == 0 {
                *v = -f64::MIN_POSITIVE / ((i + 3) as f64);
            }
        }
        let reference = reference_matmul_tb(&a, &b);
        for backend in [KernelBackend::Scalar, KernelBackend::Vectorized] {
            for threads in [1, 2] {
                assert_eq!(
                    a.matmul_transpose_b_backend_threads(&b, backend, threads),
                    reference,
                    "{backend:?} t={threads}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn edge_shape_property_all_backends(
            m in 0usize..10, k in 0usize..26, n in 0usize..19,
            salt in 0u64..500,
            threads in 1usize..4,
            backend_sel in 0usize..2,
        ) {
            let backend = if backend_sel == 0 {
                KernelBackend::Scalar
            } else {
                KernelBackend::Vectorized
            };
            let a = scrambled(m, k, salt);
            let b = scrambled(k, n, salt.wrapping_add(9));
            prop_assert_eq!(
                a.matmul_backend_threads(&b, backend, threads),
                reference_matmul(&a, &b)
            );
            let bt = scrambled(n, k, salt.wrapping_add(17));
            prop_assert_eq!(
                a.matmul_transpose_b_backend_threads(&bt, backend, threads),
                reference_matmul_tb(&a, &bt)
            );
        }

        #[test]
        fn matmul_threads_matches_reference(
            m in 1usize..12, k in 1usize..12, n in 1usize..12,
            salt in 0u64..1000,
            threads in 1usize..5,
        ) {
            let a = scrambled(m, k, salt);
            let b = scrambled(k, n, salt.wrapping_add(77));
            prop_assert_eq!(a.matmul_threads(&b, threads), reference_matmul(&a, &b));
            prop_assert_eq!(
                a.matmul_transpose_b_threads(&b.transpose(), threads),
                reference_matmul_tb(&a, &b.transpose())
            );
            prop_assert_eq!(
                a.transpose_a_matmul_threads(&scrambled(m, n, salt ^ 5), threads),
                reference_matmul_ta(&a, &scrambled(m, n, salt ^ 5))
            );
        }

        #[test]
        fn matmul_is_associative_with_vectors(
            a in proptest::collection::vec(-5.0..5.0f64, 6),
            b in proptest::collection::vec(-5.0..5.0f64, 6),
            c in proptest::collection::vec(-5.0..5.0f64, 4),
        ) {
            let ma = Matrix::from_vec(2, 3, a);
            let mb = Matrix::from_vec(3, 2, b);
            let mc = Matrix::from_vec(2, 2, c);
            let left = ma.matmul(&mb).matmul(&mc);
            let right = ma.matmul(&mb.matmul(&mc));
            for (l, r) in left.data().iter().zip(right.data()) {
                prop_assert!((l - r).abs() < 1e-9);
            }
        }

        #[test]
        fn transpose_preserves_norm(v in proptest::collection::vec(-10.0..10.0f64, 12)) {
            let a = Matrix::from_vec(3, 4, v);
            prop_assert!((a.frobenius_norm() - a.transpose().frobenius_norm()).abs() < 1e-12);
        }
    }
}
