//! Tabular Q-learning (the paper's TQL baseline).
//!
//! Classic Watkins Q-learning over a discrete state index with per-state
//! variable action counts (the FairMove action space differs by region).
//! States are lazily materialized so the table only stores visited states.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A sparse Q-table over `(state, action)` pairs.
///
/// ```
/// use fairmove_rl::QTable;
/// let mut q = QTable::new(0.5, 0.9, 0.0);
/// let _ = q.greedy(7, 3);              // materialize state 7 with 3 actions
/// q.update(7, 1, 10.0, 8, 3);          // reward 10 for action 1
/// assert_eq!(q.greedy(7, 3), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QTable {
    /// Learning rate.
    pub alpha: f64,
    /// Discount factor (the paper's β = 0.9).
    pub gamma: f64,
    q: HashMap<u64, Vec<f64>>,
    /// Optimistic initial value (encourages exploration of unseen actions).
    init_value: f64,
}

impl QTable {
    /// A fresh table.
    pub fn new(alpha: f64, gamma: f64, init_value: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha out of range");
        assert!((0.0..1.0).contains(&gamma), "gamma out of range");
        QTable {
            alpha,
            gamma,
            q: HashMap::new(),
            init_value,
        }
    }

    /// Number of states materialized so far.
    pub fn n_states(&self) -> usize {
        self.q.len()
    }

    /// Q-values for `state`, materializing `n_actions` entries on first
    /// visit. Re-visits with a larger `n_actions` extend the row.
    pub fn values_mut(&mut self, state: u64, n_actions: usize) -> &mut Vec<f64> {
        let row = self
            .q
            .entry(state)
            .or_insert_with(|| vec![self.init_value; n_actions]);
        if row.len() < n_actions {
            row.resize(n_actions, self.init_value);
        }
        row
    }

    /// Read-only Q-values for `state` (empty slice if unvisited).
    pub fn values(&self, state: u64) -> &[f64] {
        self.q.get(&state).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Greedy action for `state` over `n_actions` admissible actions.
    pub fn greedy(&mut self, state: u64, n_actions: usize) -> usize {
        let row = self.values_mut(state, n_actions);
        let mut best = 0;
        let mut best_v = f64::NEG_INFINITY;
        for (i, &v) in row.iter().take(n_actions).enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// ε-greedy action for `state`.
    pub fn epsilon_greedy(
        &mut self,
        state: u64,
        n_actions: usize,
        epsilon: f64,
        rng: &mut StdRng,
    ) -> usize {
        // Materialize the row even on the exploration branch so a later
        // `update` on this state always finds it.
        let _ = self.values_mut(state, n_actions);
        if rng.gen::<f64>() < epsilon {
            rng.gen_range(0..n_actions)
        } else {
            self.greedy(state, n_actions)
        }
    }

    /// Whether every stored Q-value is finite. A diverging learning rate or
    /// non-finite reward poisons the table through the TD update; health
    /// checks use this to detect it.
    pub fn values_finite(&self) -> bool {
        self.q.values().all(|row| row.iter().all(|v| v.is_finite()))
    }

    /// The Watkins update:
    /// `Q(s,a) ← Q(s,a) + α (r + γ max_a' Q(s',a') − Q(s,a))`.
    ///
    /// `next_n_actions` sizes the successor row; pass 0 for terminal states
    /// (the max term is then 0).
    pub fn update(
        &mut self,
        state: u64,
        action: usize,
        reward: f64,
        next_state: u64,
        next_n_actions: usize,
    ) {
        let gamma = self.gamma;
        self.update_with_discount(state, action, reward, next_state, next_n_actions, gamma);
    }

    /// Semi-MDP variant of [`Self::update`] with an explicit bootstrap
    /// discount (e.g. `γ^k` when `k` slots elapsed between decisions).
    pub fn update_with_discount(
        &mut self,
        state: u64,
        action: usize,
        reward: f64,
        next_state: u64,
        next_n_actions: usize,
        discount: f64,
    ) {
        let next_max = if next_n_actions == 0 {
            0.0
        } else {
            let row = self.values_mut(next_state, next_n_actions);
            row.iter()
                .take(next_n_actions)
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let row = self
            .q
            .get_mut(&state)
            .expect("update on unvisited state; call values_mut/greedy first");
        assert!(action < row.len(), "action {action} out of row");
        let td_target = reward + discount * next_max;
        row[action] += self.alpha * (td_target - row[action]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// A 4-state chain: 0 → 1 → 2 → 3(terminal, reward 1). Action 0 moves
    /// right, action 1 stays with 0 reward. Optimal: always move right.
    fn train_chain(episodes: usize) -> QTable {
        let mut q = QTable::new(0.5, 0.9, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..episodes {
            let mut s = 0u64;
            while s < 3 {
                let a = q.epsilon_greedy(s, 2, 0.2, &mut rng);
                let (s2, r) = if a == 0 {
                    (s + 1, if s == 2 { 1.0 } else { 0.0 })
                } else {
                    (s, 0.0)
                };
                let next_n = if s2 == 3 { 0 } else { 2 };
                q.update(s, a, r, s2, next_n);
                s = s2;
            }
        }
        q
    }

    #[test]
    fn learns_optimal_chain_policy() {
        let mut q = train_chain(300);
        for s in 0..3 {
            assert_eq!(q.greedy(s, 2), 0, "state {s} should move right");
        }
    }

    #[test]
    fn values_propagate_discounted() {
        let mut q = train_chain(2000);
        // Q(2, right) → 1, Q(1, right) → γ, Q(0, right) → γ².
        let v2 = q.values_mut(2, 2)[0];
        let v1 = q.values_mut(1, 2)[0];
        let v0 = q.values_mut(0, 2)[0];
        assert!((v2 - 1.0).abs() < 0.05, "v2 {v2}");
        assert!((v1 - 0.9).abs() < 0.08, "v1 {v1}");
        assert!((v0 - 0.81).abs() < 0.1, "v0 {v0}");
    }

    #[test]
    fn rows_materialize_lazily() {
        let mut q = QTable::new(0.1, 0.9, 0.0);
        assert_eq!(q.n_states(), 0);
        let _ = q.greedy(42, 3);
        assert_eq!(q.n_states(), 1);
        assert_eq!(q.values(42).len(), 3);
        assert!(q.values(7).is_empty());
    }

    #[test]
    fn rows_grow_when_action_space_grows() {
        let mut q = QTable::new(0.1, 0.9, 0.5);
        let _ = q.values_mut(1, 2);
        let row = q.values_mut(1, 5);
        assert_eq!(row.len(), 5);
        assert!(row.iter().all(|&v| v == 0.5));
    }

    #[test]
    fn epsilon_one_is_uniform_random() {
        let mut q = QTable::new(0.1, 0.9, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[q.epsilon_greedy(0, 4, 1.0, &mut rng)] += 1;
        }
        for c in counts {
            assert!(c > 800, "skewed counts {counts:?}");
        }
    }

    #[test]
    fn terminal_update_ignores_successor() {
        let mut q = QTable::new(1.0, 0.9, 0.0);
        let _ = q.values_mut(0, 1);
        q.update(0, 0, 5.0, 999, 0);
        assert!((q.values(0)[0] - 5.0).abs() < 1e-12);
        // Terminal successor was never materialized.
        assert!(q.values(999).is_empty());
    }

    #[test]
    #[should_panic(expected = "gamma out of range")]
    fn rejects_gamma_one() {
        let _ = QTable::new(0.1, 1.0, 0.0);
    }

    #[test]
    fn values_finite_detects_poisoned_rows() {
        let mut q = QTable::new(1.0, 0.9, 0.0);
        assert!(q.values_finite());
        let _ = q.values_mut(0, 1);
        q.update(0, 0, f64::NAN, 1, 0);
        assert!(!q.values_finite());
    }
}
