//! Cross-crate integration tests: every policy drives the simulator, the
//! metrics pipeline consumes the resulting ledgers, and the whole stack is
//! deterministic under a fixed seed.

use fairmove_core::city::City;
use fairmove_core::city::MINUTES_PER_DAY;
use fairmove_core::method::{Method, MethodKind};
use fairmove_core::metrics::{self, findings};
use fairmove_core::sim::{Environment, SimConfig};

fn tiny_sim() -> SimConfig {
    SimConfig::test_scale()
}

#[test]
fn every_method_drives_a_full_day() {
    let sim = tiny_sim();
    let city = City::generate(sim.city.clone());
    for kind in MethodKind::all() {
        let mut method = Method::build(kind, &city, &sim, 0.6);
        let mut env = Environment::new(sim.clone());
        env.run(method.as_policy());
        assert!(env.done(), "{} did not finish", kind.name());
        assert!(
            !env.ledger().trips().is_empty(),
            "{} served no trips",
            kind.name()
        );
        // Full time accounting holds for every policy.
        let horizon = u64::from(sim.days * MINUTES_PER_DAY);
        for ledger in env.ledger().taxis() {
            assert_eq!(ledger.on_duty_minutes(), horizon, "{}", kind.name());
        }
    }
}

#[test]
fn metrics_pipeline_consumes_simulation_output() {
    let sim = tiny_sim();
    let city = City::generate(sim.city.clone());

    let mut gt = Method::build(MethodKind::Gt, &city, &sim, 0.6);
    let mut env_gt = Environment::new(sim.clone());
    env_gt.run(gt.as_policy());

    let mut sd2 = Method::build(MethodKind::Sd2, &city, &sim, 0.6);
    let mut env_sd2 = Environment::new(sim.clone());
    env_sd2.run(sd2.as_policy());

    let report = metrics::MethodReport::compute("SD2", env_gt.ledger(), env_sd2.ledger());
    assert!(report.prct.is_finite());
    assert!(report.prit.is_finite());
    assert!(report.pipe.is_finite());
    assert!(report.pipf.is_finite());
    assert!(report.median_cruise_minutes >= 0.0);

    // Findings extractors work on real output.
    let durations = findings::charge_durations(env_gt.ledger());
    assert!(!durations.is_empty());
    let by_hour = findings::charge_events_by_hour(env_gt.ledger());
    assert_eq!(
        by_hour.iter().sum::<u32>() as usize,
        env_gt.ledger().charges().len()
    );
    let revenue = findings::per_region_trip_revenue(env_gt.ledger(), city.n_regions(), 0, 24);
    assert_eq!(revenue.len(), city.n_regions());
}

#[test]
fn same_seed_same_world_across_policies() {
    // Both environments must present identical demand: equal GT trips.
    let sim = tiny_sim();
    let run = || {
        let city = City::generate(sim.city.clone());
        let mut gt = Method::build(MethodKind::Gt, &city, &sim, 0.6);
        let mut env = Environment::new(sim.clone());
        env.run(gt.as_policy());
        (
            env.ledger().trips().len(),
            env.ledger().charges().len(),
            env.ledger().totals(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn trip_revenue_flows_into_profit_efficiency() {
    let sim = tiny_sim();
    let city = City::generate(sim.city.clone());
    let mut gt = Method::build(MethodKind::Gt, &city, &sim, 0.6);
    let mut env = Environment::new(sim.clone());
    env.run(gt.as_policy());

    let (revenue, cost) = env.ledger().totals();
    let per_trip: f64 = env.ledger().trips().iter().map(|t| t.fare_cny).sum();
    assert!((revenue - per_trip).abs() < 1e-6, "revenue mismatch");
    let per_charge: f64 = env.ledger().charges().iter().map(|c| c.cost_cny).sum();
    assert!((cost - per_charge).abs() < 1e-6, "cost mismatch");

    // PE per taxi is consistent with the ledger totals.
    let pes = env.ledger().profit_efficiencies();
    assert_eq!(pes.len(), sim.fleet_size);
    for (i, ledger) in env.ledger().taxis().iter().enumerate() {
        let hours = ledger.on_duty_minutes() as f64 / 60.0;
        assert!((pes[i] - ledger.profit_cny() / hours).abs() < 1e-9);
    }
}

#[test]
fn charging_peaks_fall_in_cheap_windows() {
    // The GT behaviour model must reproduce the paper's Fig. 4: more
    // charging in off-peak windows than in peak windows.
    let mut sim = tiny_sim();
    sim.fleet_size = 120;
    let city = City::generate(sim.city.clone());
    let mut gt = Method::build(MethodKind::Gt, &city, &sim, 0.6);
    let mut env = Environment::new(sim.clone());
    env.run(gt.as_policy());

    let by_hour = findings::charge_events_by_hour(env.ledger());
    let pricing = &sim.pricing;
    let mut off = 0u32;
    let mut off_hours = 0u32;
    let mut peak = 0u32;
    let mut peak_hours = 0u32;
    for h in 0..24u8 {
        match pricing.band_at(fairmove_core::city::HourOfDay(h)) {
            fairmove_core::data::PriceBand::OffPeak => {
                off += by_hour[h as usize];
                off_hours += 1;
            }
            fairmove_core::data::PriceBand::Peak => {
                peak += by_hour[h as usize];
                peak_hours += 1;
            }
            _ => {}
        }
    }
    let off_rate = f64::from(off) / f64::from(off_hours);
    let peak_rate = f64::from(peak) / f64::from(peak_hours);
    assert!(
        off_rate > peak_rate,
        "off-peak {off_rate:.1}/h vs peak {peak_rate:.1}/h — no price chasing visible"
    );
}

#[test]
fn sd2_congests_stations_more_than_gt() {
    // SD2 herds into nearest stations; its mean idle time should not beat
    // GT's by much — and typically is worse. We assert the weak direction
    // robustly: SD2 idle ≥ 60% of GT idle (i.e. it certainly doesn't solve
    // congestion), and SD2 produces queueing at some station.
    let mut sim = tiny_sim();
    sim.fleet_size = 150;
    let city = City::generate(sim.city.clone());

    let mut gt = Method::build(MethodKind::Gt, &city, &sim, 0.6);
    let mut env_gt = Environment::new(sim.clone());
    env_gt.run(gt.as_policy());

    let mut sd2 = Method::build(MethodKind::Sd2, &city, &sim, 0.6);
    let mut env_sd2 = Environment::new(sim.clone());
    env_sd2.run(sd2.as_policy());

    let idle = |l: &fairmove_core::sim::FleetLedger| {
        let n = l.charges().len().max(1) as f64;
        l.charges()
            .iter()
            .map(|c| f64::from(c.idle_minutes()))
            .sum::<f64>()
            / n
    };
    let gt_idle = idle(env_gt.ledger());
    let sd2_idle = idle(env_sd2.ledger());
    assert!(
        sd2_idle > 0.6 * gt_idle,
        "SD2 idle {sd2_idle:.1} vs GT {gt_idle:.1}"
    );
}
