//! End-to-end: the full comparison pipeline and the public FairMove API,
//! exercised at test scale.

use fairmove_core::experiments::{alpha_sweep, ComparisonConfig, ComparisonResults};
use fairmove_core::method::MethodKind;
use fairmove_core::sim::SimConfig;
use fairmove_core::{FairMove, FairMoveConfig};

#[test]
fn full_comparison_pipeline_runs() {
    let config = ComparisonConfig {
        sim: SimConfig::test_scale(),
        train_episodes: 1,
        alpha: 0.6,
        methods: vec![MethodKind::Sd2, MethodKind::Tql, MethodKind::FairMove],
        eval_seeds: 2,
    };
    let results = ComparisonResults::run(&config);
    assert_eq!(results.methods.len(), 3);
    assert!(!results.gt_ledger().trips().is_empty());
    for m in &results.methods {
        assert!(!m.outcome.ledger.trips().is_empty(), "{}", m.kind.name());
        assert!(m.report.prct.is_finite());
        assert!(m.report.median_pe.is_finite());
    }
}

#[test]
fn alpha_sweep_produces_finite_rewards() {
    let sweep = alpha_sweep(&SimConfig::test_scale(), 1, &[0.0, 0.5, 1.0]);
    assert_eq!(sweep.len(), 3);
    for &(alpha, reward) in &sweep {
        assert!((0.0..=1.0).contains(&alpha));
        assert!(reward.is_finite(), "α={alpha} reward {reward}");
    }
}

#[test]
fn public_api_train_evaluate_recommend() {
    let mut system = FairMove::new(FairMoveConfig::test_scale());
    let stats = system.train();
    assert!(stats.train_steps > 0);

    let eval = system.evaluate();
    assert!(!eval.ledger.trips().is_empty());
    assert!(eval.pf >= 0.0);

    // Online recommendation path.
    let env = fairmove_core::sim::Environment::new(system.config().sim.clone());
    let obs = env.observation();
    let ctxs = env.decision_contexts();
    let recs = system.recommend(&obs, &ctxs);
    assert_eq!(recs.len(), ctxs.len());
}

#[test]
fn trained_fairmove_beats_random_floor_on_reward() {
    // After even one training episode on the tiny world, the frozen policy's
    // evaluation reward should be finite and the ledger non-degenerate.
    // (Directional dominance over baselines is asserted at evaluation scale
    // by the bench harness, not in unit CI.)
    let mut config = FairMoveConfig::test_scale();
    config.train_episodes = 2;
    let mut system = FairMove::new(config);
    system.train();
    let eval = system.evaluate();
    assert!(eval.average_reward.is_finite());
    assert!(eval.mean_pe > 0.0, "fleet earned nothing: {}", eval.mean_pe);
}
