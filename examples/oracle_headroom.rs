//! Oracle headroom: how much improvement is physically available?
//!
//! Runs the ground truth, the model-based oracle heuristic (full knowledge,
//! congestion-aware, price-aware), and a trained FairMove policy on the same
//! demand, and reports where FairMove sits between the two — the honest way
//! to read any reproduction's improvement numbers.
//!
//! Run with:
//! ```text
//! cargo run --release --example oracle_headroom
//! ```
//!
//! Pass `--smoke` for the seconds-scale CI configuration.

use fairmove_core::agents::OraclePolicy;
use fairmove_core::city::City;
use fairmove_core::method::{Method, MethodKind};
use fairmove_core::metrics::MethodReport;
use fairmove_core::runner::Runner;
use fairmove_core::sim::SimConfig;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut sim = if smoke {
        SimConfig::test_scale()
    } else {
        SimConfig::default()
    };
    if !smoke {
        sim.fleet_size = 300;
        sim.days = 1;
        sim.city.total_charging_points = 75;
    }
    let runner = Runner::new(sim.clone(), if smoke { 1 } else { 6 }, 0.6);
    let city = City::generate(sim.city.clone());

    println!("running ground truth …");
    let mut gt = Method::build(MethodKind::Gt, &city, &sim, 0.6);
    let (_, gt_out) = runner.train_and_evaluate(&mut gt);

    println!("running oracle heuristic …");
    let mut oracle = OraclePolicy::new();
    let oracle_out = runner.run_once(&mut oracle, sim.seed);

    println!("training + running FairMove …\n");
    let mut fm = Method::build(MethodKind::FairMove, &city, &sim, 0.6);
    let (_, fm_out) = runner.train_and_evaluate(&mut fm);

    let print_line = |name: &str, report: &MethodReport| {
        println!(
            "{name:>9}:  PIPE {:+6.1}%   PIPF {:+6.1}%   PRCT {:+6.1}%   PRIT {:+6.1}%",
            report.pipe * 100.0,
            report.pipf * 100.0,
            report.prct * 100.0,
            report.prit * 100.0,
        );
    };

    let oracle_report = MethodReport::compute("Oracle", &gt_out.ledger, &oracle_out.ledger);
    let fm_report = MethodReport::compute("FairMove", &gt_out.ledger, &fm_out.ledger);
    println!("vs ground truth:");
    print_line("Oracle", &oracle_report);
    print_line("FairMove", &fm_report);

    let headroom_used = if oracle_report.pipe.abs() > 1e-9 {
        fm_report.pipe / oracle_report.pipe * 100.0
    } else {
        f64::NAN
    };
    println!("\nFairMove captures {headroom_used:.0}% of the oracle's profit-efficiency headroom.");
    println!(
        "(GT served {} trips; oracle {}; FairMove {})",
        gt_out.ledger.trips().len(),
        oracle_out.ledger.trips().len(),
        fm_out.ledger.trips().len()
    );
}
