//! Operations dashboard: the monitoring view a dispatch team would watch.
//!
//! Runs one day under FairMove-style displacement with a telemetry context
//! attached, then renders the dashboard **from the telemetry registry
//! snapshot** — the same counters, gauges, and histograms the simulator and
//! the CMA2C learner record during the run — via the text exporter. A slice
//! of the bounded event trace rounds out the view.
//!
//! Run with:
//! ```text
//! cargo run --release --example ops_dashboard
//! ```
//!
//! Pass `--smoke` for the seconds-scale CI configuration.

use fairmove_core::agents::{Cma2cConfig, Cma2cPolicy};
use fairmove_core::city::SimTime;
use fairmove_core::sim::{DisplacementPolicy, Environment, SimConfig, TraceLog};
use fairmove_core::telemetry::{export, trace, Telemetry};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut config = if smoke {
        SimConfig::test_scale()
    } else {
        SimConfig::default()
    };
    if !smoke {
        config.fleet_size = 200;
        config.days = 1;
        config.city.total_charging_points = 50;
    }

    // One registry for the whole run: the environment records slot-level
    // operational metrics, the policy its training diagnostics. Span tracing
    // stays on too — the per-thread rings retain the newest spans, from
    // which the dashboard surfaces the slowest ones.
    trace::set_enabled(true);
    let telemetry = Telemetry::enabled();
    let mut env = Environment::new(config.clone());
    env.set_telemetry(&telemetry);
    let mut policy = Cma2cPolicy::new(env.city(), Cma2cConfig::default());
    policy.set_telemetry(&telemetry);

    println!(
        "running one day of {} taxis under CMA2C (online learning) …\n",
        config.fleet_size
    );
    env.run(&mut policy);

    // --- The dashboard proper: the registry snapshot, text-rendered. ---
    let snapshot = telemetry.snapshot();
    println!("{}", export::render_text(&snapshot));

    // --- Headline numbers, read from the same snapshot (no ledger math). ---
    let counter = |name| snapshot.counter(name).unwrap_or(0);
    println!(
        "day total: {} trips, {} charges, {} expired requests, {} station redirects",
        counter("sim.trips"),
        counter("sim.charges"),
        counter("sim.expired_requests"),
        counter("sim.station_redirects"),
    );
    if let Some(h) = snapshot.histogram("sim.step_slot_seconds") {
        println!(
            "slot latency: mean {:.2} ms, p95 {:.2} ms over {} slots",
            h.mean() * 1e3,
            h.quantile(0.95) * 1e3,
            h.count,
        );
    }
    // --- Latency percentile columns, from the HDR histograms. ---
    println!("\nlatency percentiles:");
    println!(
        "  {:<44} {:>9} {:>9} {:>9} {:>8}",
        "histogram", "p50 ms", "p99 ms", "p999 ms", "count"
    );
    for h in &snapshot.histograms {
        if h.base_name().ends_with("_seconds") && h.count > 0 {
            println!(
                "  {:<44} {:>9.3} {:>9.3} {:>9.3} {:>8}",
                h.name,
                h.quantile(0.5) * 1e3,
                h.quantile(0.99) * 1e3,
                h.quantile(0.999) * 1e3,
                h.count,
            );
        }
    }

    // --- The slowest spans still retained in the trace ring buffers. ---
    let mut spans = trace::collect_events();
    spans.sort_by(|a, b| b.dur_ns.cmp(&a.dur_ns).then(a.id.cmp(&b.id)));
    println!(
        "\nslowest spans ({} retained in ring buffers):",
        spans.len()
    );
    for e in spans.iter().take(5) {
        println!(
            "  {:<10} {:>10.3} ms  depth {}  tid {}  arg {}",
            e.name,
            e.dur_ns as f64 / 1e6,
            e.depth,
            e.tid,
            e.arg,
        );
    }

    if let Some(steps) = snapshot.counter("cma2c.train_steps") {
        println!(
            "learner: {} gradient steps, critic loss {:.3}, actor grad norm {:.3}",
            steps,
            snapshot.gauge("cma2c.critic_loss").unwrap_or(f64::NAN),
            snapshot.gauge("cma2c.actor_grad_norm").unwrap_or(f64::NAN),
        );
    }

    // --- A slice of the raw event log. ---
    let trace = TraceLog::from_ledger(env.ledger());
    println!("\nevent log, 08:00–08:15:");
    print!(
        "{}",
        trace.render_window(SimTime::from_dhm(0, 8, 0), SimTime::from_dhm(0, 8, 15))
    );
    // For long-running dashboards, bound the kept trace to the newest events:
    let tail = TraceLog::with_capacity_limit(env.ledger(), 3);
    println!("\nlast {} events of the day:", tail.len());
    print!("{}", tail.render_window(SimTime(0), SimTime(u32::MAX)));

    // The same snapshot also exports as JSON and Prometheus text exposition:
    println!("\nPrometheus exposition (first lines):");
    for line in export::render_prometheus(&snapshot).lines().take(8) {
        println!("  {line}");
    }
}
