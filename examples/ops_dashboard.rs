//! Operations dashboard: the monitoring view a dispatch team would watch.
//!
//! Runs one day under FairMove-style displacement while collecting per-slot
//! KPI samples, periodic fleet snapshots, and the event trace; then renders
//! a textual dashboard: hourly utilization, charging saturation, profit
//! flow, and a few minutes of raw event log.
//!
//! Run with:
//! ```text
//! cargo run --release --example ops_dashboard
//! ```

use fairmove_core::agents::{Cma2cConfig, Cma2cPolicy};
use fairmove_core::city::SimTime;
use fairmove_core::metrics::KpiSeries;
use fairmove_core::sim::{DisplacementPolicy, Environment, FleetSnapshot, SimConfig, TraceLog};

fn main() {
    let mut config = SimConfig::default();
    config.fleet_size = 200;
    config.days = 1;
    config.city.total_charging_points = 50;

    let mut env = Environment::new(config.clone());
    let mut policy = Cma2cPolicy::new(env.city(), Cma2cConfig::default());

    let mut kpis = KpiSeries::new();
    let mut snapshots: Vec<FleetSnapshot> = Vec::new();

    println!("running one day of {} taxis under CMA2C (online learning) …\n", config.fleet_size);
    let mut slot = 0u32;
    while !env.done() {
        let feedback = env.step_slot(&mut policy);
        kpis.record(&feedback);
        policy.observe(&feedback);
        if slot % 6 == 0 {
            snapshots.push(FleetSnapshot::capture(&env));
        }
        slot += 1;
    }
    env.flush_accounting();

    // --- Hourly fleet-state strip chart ---
    println!("hour   serving  vacant  charging  queued  util%  sat.stations");
    println!("-----  -------  ------  --------  ------  -----  ------------");
    for snap in &snapshots {
        let hour = (snap.minute / 60) % 24;
        println!(
            "{:02}:00  {:>7}  {:>6}  {:>8}  {:>6}  {:>4.0}%  {:>12}",
            hour,
            snap.serving,
            snap.vacant,
            snap.charging,
            snap.queued,
            snap.utilization() * 100.0,
            snap.saturated_stations,
        );
    }

    // --- Profit flow per hour ---
    println!("\nhourly fleet profit (CNY per slot, mean):");
    for (h, v) in kpis.hourly_profit().iter().enumerate() {
        if let Some(v) = v {
            let bar = "#".repeat((v / 40.0).max(0.0) as usize);
            println!("{h:02}:00  {v:>7.0}  {bar}");
        }
    }

    // --- Fairness trend ---
    let pf_ma = kpis.pf_moving_average(12);
    println!(
        "\nPF (PE variance) trend: start {:.1} → end {:.1} (2h moving average)",
        pf_ma.first().copied().unwrap_or(0.0),
        pf_ma.last().copied().unwrap_or(0.0)
    );

    // --- A slice of the raw event log ---
    let trace = TraceLog::from_ledger(env.ledger());
    println!("\nevent log, 08:00–08:15:");
    print!(
        "{}",
        trace.render_window(SimTime::from_dhm(0, 8, 0), SimTime::from_dhm(0, 8, 15))
    );

    let (revenue, cost) = env.ledger().totals();
    println!(
        "\nday total: {} trips, {} charges, revenue {:.0} CNY, charging cost {:.0} CNY",
        env.ledger().trips().len(),
        env.ledger().charges().len(),
        revenue,
        cost
    );
}
