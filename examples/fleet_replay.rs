//! Fleet replay: generate a synthetic operating day and export it in the
//! paper's Table I record formats (transaction, station, partition records
//! with CSV round-tripping) — the pipeline a data team would use to feed
//! FairMove from real fleet feeds.
//!
//! Run with:
//! ```text
//! cargo run --release --example fleet_replay
//! ```
//!
//! Pass `--smoke` for the seconds-scale CI configuration.

use fairmove_core::agents::GroundTruthPolicy;
use fairmove_core::data::schema::{PartitionRecord, StationRecord, TransactionRecord};
use fairmove_core::sim::{Environment, SimConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut config = if smoke {
        SimConfig::test_scale()
    } else {
        SimConfig::default()
    };
    if !smoke {
        config.fleet_size = 150;
        config.days = 1;
    }

    let mut env = Environment::new(config.clone());
    let mut gt = GroundTruthPolicy::for_city(env.city(), config.fleet_size, config.seed);
    println!("simulating one day …");
    env.run(&mut gt);

    // --- Transactions (Table I row 2) ---
    let transactions: Vec<TransactionRecord> = env
        .ledger()
        .trips()
        .iter()
        .map(|t| TransactionRecord {
            vehicle_id: t.taxi.0,
            pickup_time: t.pickup_at,
            dropoff_time: t.dropoff_at,
            pickup_pos: env.city().region(t.origin).centroid,
            dropoff_pos: env.city().region(t.destination).centroid,
            operating_km: t.distance_km,
            cruising_km: f64::from(t.cruise_minutes) * 0.25, // ~15 km/h cruise
            fare_cny: t.fare_cny,
        })
        .collect();
    println!("\ntransaction records: {} (first 3)", transactions.len());
    for rec in transactions.iter().take(3) {
        let line = rec.to_csv();
        // Demonstrate lossless round-trip through the CSV format.
        let parsed = TransactionRecord::from_csv(&line).expect("round trip");
        assert_eq!(parsed.vehicle_id, rec.vehicle_id);
        println!("  {line}");
    }

    // --- Stations (Table I row 3) ---
    println!("\nstation records: {} (first 3)", env.city().n_stations());
    for s in env.city().stations().iter().take(3) {
        let rec = StationRecord {
            station_id: s.id,
            name: format!("Station {}", s.id),
            position: s.position,
            fast_points: s.charging_points,
        };
        println!("  {}", rec.to_csv());
    }

    // --- Partition (Table I row 4) ---
    println!("\npartition records: {} (first 3)", env.city().n_regions());
    for r in env.city().partition().regions().iter().take(3) {
        let rec = PartitionRecord {
            region_id: r.id,
            centroid: r.centroid,
            area_km2: r.area_km2,
        };
        println!("  {}", rec.to_csv());
    }

    let (revenue, cost) = env.ledger().totals();
    println!(
        "\nday summary: {} trips, {} charges, {:.0} CNY revenue, {:.0} CNY charging cost",
        env.ledger().trips().len(),
        env.ledger().charges().len(),
        revenue,
        cost
    );
}
