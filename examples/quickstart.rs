//! Quickstart: build the FairMove system, train it briefly, evaluate it
//! against the no-displacement ground truth, and print the headline metrics.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Pass `--smoke` for a seconds-scale run (tiny fleet, one training
//! episode) — the configuration CI uses to keep every example honest.

use fairmove_core::{FairMove, FairMoveConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // A small-but-realistic scale: a few minutes in release mode. RL needs
    // the training episodes — with fewer than ~6 the policy loses to the
    // ground-truth drivers. Paper-scale parameters are in
    // `SimConfig::shenzhen_scale()`.
    let mut config = if smoke {
        FairMoveConfig::test_scale()
    } else {
        FairMoveConfig::default()
    };
    if !smoke {
        config.sim.fleet_size = 300;
        config.sim.days = 1;
        config.sim.city.total_charging_points = 75; // Shenzhen's ~4:1 ratio
        config.train_episodes = 8;
    }

    println!(
        "city: {} regions, {} charging stations, fleet of {} e-taxis",
        config.sim.city.n_regions, config.sim.city.n_stations, config.sim.fleet_size
    );

    let mut system = FairMove::new(config);

    println!("training CMA2C …");
    let stats = system.train();
    for (i, r) in stats.reward_curve.iter().enumerate() {
        println!("  episode {}: average reward {:.3}", i + 1, r);
    }
    println!("  {} gradient steps", stats.train_steps);

    println!("evaluating frozen policy vs ground truth …");
    let eval = system.evaluate();
    println!("  trips served      : {}", eval.ledger.trips().len());
    println!("  charge events     : {}", eval.ledger.charges().len());
    println!("  fleet mean PE     : {:.1} CNY/h", eval.mean_pe);
    println!(
        "  profit fairness PF: {:.1} (variance; lower is fairer)",
        eval.pf
    );
    let r = &eval.vs_ground_truth;
    println!("  vs ground truth:");
    println!("    PRCT (cruise-time reduction) : {:+.1}%", r.prct * 100.0);
    println!("    PRIT (idle-time reduction)   : {:+.1}%", r.prit * 100.0);
    println!("    PIPE (profit-eff. increase)  : {:+.1}%", r.pipe * 100.0);
    println!("    PIPF (fairness increase)     : {:+.1}%", r.pipf * 100.0);
    println!(
        "\nnote: this demo uses a deliberately small training budget; the\n\
         evaluated recipe (2-day episodes x 10, 3 eval seeds) lives in the\n\
         harness: cargo run --release -p fairmove-bench --bin evaluation\n\
         -- --scale small   (see EXPERIMENTS.md for its results)"
    );
}
