//! Fairness audit: compare the per-driver profit-efficiency distribution
//! under ground-truth driving vs. FairMove displacement (the paper's Fig. 8
//! vs. Fig. 14 story), including the 20th/80th percentile gap the paper
//! highlights ("the profit of high-efficient drivers will be 42% higher
//! than the low-efficient drivers").
//!
//! Run with:
//! ```text
//! cargo run --release --example fairness_audit
//! ```
//!
//! Pass `--smoke` for the seconds-scale CI configuration.

use fairmove_core::city::City;
use fairmove_core::method::{Method, MethodKind};
use fairmove_core::metrics::{findings, gini, profit_fairness};
use fairmove_core::runner::Runner;
use fairmove_core::sim::SimConfig;

fn describe(name: &str, pes: &[f64]) {
    let cdf = fairmove_core::metrics::Cdf::new(pes.iter().copied());
    println!("{name}:");
    println!(
        "  P20 {:.1}  median {:.1}  P80 {:.1}  (CNY/h)",
        cdf.quantile(0.2),
        cdf.median(),
        cdf.quantile(0.8)
    );
    let gap = cdf.quantile(0.8) / cdf.quantile(0.2).max(1e-9) - 1.0;
    println!("  P80/P20 gap: {:+.0}%", gap * 100.0);
    println!(
        "  PF (variance): {:.1}   Gini: {:.3}",
        profit_fairness(pes),
        gini(pes)
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut sim = if smoke {
        SimConfig::test_scale()
    } else {
        SimConfig::default()
    };
    if !smoke {
        sim.fleet_size = 300;
        sim.days = 1;
    }
    let runner = Runner::new(sim.clone(), if smoke { 1 } else { 2 }, 0.6);
    let city = City::generate(sim.city.clone());

    println!("running ground truth …");
    let mut gt = Method::build(MethodKind::Gt, &city, &sim, 0.6);
    let (_, gt_out) = runner.train_and_evaluate(&mut gt);

    println!("training + running FairMove (CMA2C, α = 0.6) …\n");
    let mut fm = Method::build(MethodKind::FairMove, &city, &sim, 0.6);
    let (_, fm_out) = runner.train_and_evaluate(&mut fm);

    describe(
        "Ground truth (no displacement)",
        &gt_out.ledger.profit_efficiencies(),
    );
    println!();
    describe(
        "FairMove displacement",
        &fm_out.ledger.profit_efficiencies(),
    );

    let gt_pf = profit_fairness(&gt_out.ledger.profit_efficiencies());
    let fm_pf = profit_fairness(&fm_out.ledger.profit_efficiencies());
    println!(
        "\nPIPF (fairness increase): {:+.1}%  (paper reports +54.7% at city scale;\n\
         this demo's 2-episode budget undertrains — see EXPERIMENTS.md for the\n\
         evaluated 10-episode, 3-seed numbers)",
        (gt_pf - fm_pf) / gt_pf * 100.0
    );

    // Per-method PE CDF points, for plotting elsewhere.
    let fm_cdf = findings::profit_efficiency_distribution(&fm_out.ledger);
    println!("\nFairMove PE CDF (value @ cumulative fraction):");
    for (v, q) in fm_cdf.points(6) {
        println!("  {:>6.1} CNY/h @ {:.0}%", v, q * 100.0);
    }
}
