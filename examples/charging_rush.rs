//! Charging rush: reproduce the paper's Section II finding that time-of-use
//! pricing concentrates charging into the cheap windows (Fig. 4), congesting
//! stations and stretching idle time (Fig. 12's long tail).
//!
//! Runs one day of ground-truth (no displacement) drivers and prints, per
//! hour: the tariff band, the number of charge events started, and the mean
//! idle time of those events.
//!
//! Run with:
//! ```text
//! cargo run --release --example charging_rush
//! ```
//!
//! Pass `--smoke` for the seconds-scale CI configuration.

use fairmove_core::agents::GroundTruthPolicy;
use fairmove_core::city::HourOfDay;
use fairmove_core::data::{ChargingPricing, PriceBand};
use fairmove_core::metrics::findings;
use fairmove_core::sim::{Environment, SimConfig};

fn band_label(band: PriceBand) -> &'static str {
    match band {
        PriceBand::OffPeak => "off-peak",
        PriceBand::Flat => "flat    ",
        PriceBand::Peak => "peak    ",
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut config = if smoke {
        SimConfig::test_scale()
    } else {
        SimConfig::default()
    };
    if !smoke {
        config.fleet_size = 400;
        config.days = 1;
    }

    let mut env = Environment::new(config.clone());
    let mut gt = GroundTruthPolicy::for_city(env.city(), config.fleet_size, config.seed);
    println!(
        "simulating one day of {} heuristic drivers …\n",
        config.fleet_size
    );
    env.run(&mut gt);

    let pricing = ChargingPricing::default();
    let by_hour = findings::charge_events_by_hour(env.ledger());

    // Mean idle per decision hour.
    let mut idle_sum = [0.0f64; 24];
    let mut idle_n = [0u32; 24];
    for c in env.ledger().charges() {
        let h = c.decided_at.hour_of_day().index();
        idle_sum[h] += f64::from(c.idle_minutes());
        idle_n[h] += 1;
    }

    println!("hour   tariff    rate   charges  mean idle");
    println!("----   --------  -----  -------  ---------");
    for h in 0..24u8 {
        let hour = HourOfDay(h);
        let band = pricing.band_at(hour);
        let idle = if idle_n[h as usize] > 0 {
            format!(
                "{:.1} min",
                idle_sum[h as usize] / f64::from(idle_n[h as usize])
            )
        } else {
            "-".to_string()
        };
        let bar = "#".repeat((by_hour[h as usize] as usize) / 3);
        println!(
            "{:02}:00  {}  {:.2}   {:>5}    {:>9}  {}",
            h,
            band_label(band),
            pricing.rate_at(hour),
            by_hour[h as usize],
            idle,
            bar
        );
    }

    let off_peak_hours: Vec<usize> = (0..24)
        .filter(|&h| pricing.band_at(HourOfDay(h as u8)) == PriceBand::OffPeak)
        .collect();
    let off_peak_events: u32 = off_peak_hours.iter().map(|&h| by_hour[h]).sum();
    let total: u32 = by_hour.iter().sum();
    println!(
        "\n{}/{} charge events ({:.0}%) started in off-peak hours — price chasing",
        off_peak_events,
        total,
        100.0 * f64::from(off_peak_events) / f64::from(total.max(1))
    );

    let durations = findings::charge_durations(env.ledger());
    println!(
        "charge durations: median {:.0} min, {:.1}% between 45 and 120 min (paper: 73.5%)",
        durations.median(),
        durations.fraction_in(45.0, 120.0) * 100.0
    );
}
